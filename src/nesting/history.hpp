// Commit-history recording and offline conflict-serializability checking.
//
// QR-DTM promises 1-copy serializability; this module lets tests *verify*
// it on real concurrent executions instead of trusting the protocol.  Every
// committed transaction logs the versions it read and the versions it
// installed.  The checker then builds the standard precedence graph:
//   * wr: the installer of version v of key k precedes every reader of
//         (k, v);
//   * ww: installers of a key precede the installers of its later versions;
//   * rw: a reader of (k, v) precedes the installer of (k, v'), v' > v
//         (anti-dependency: the read happened before the overwrite);
// and reports a violation if the graph has a cycle, if two transactions
// installed the same version of a key, or if a transaction read a version
// nobody installed (and that is not the seeded initial state).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/store/key.hpp"
#include "src/store/record.hpp"

namespace acn::nesting {

struct CommittedTxn {
  std::uint64_t tx = 0;
  std::vector<std::pair<store::ObjectKey, store::Version>> reads;
  std::vector<std::pair<store::ObjectKey, store::Version>> writes;
};

/// Thread-safe append-only log of committed transactions.
class HistoryLog {
 public:
  void record(CommittedTxn txn);
  std::vector<CommittedTxn> snapshot() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<CommittedTxn> txns_;
};

struct SerializabilityReport {
  bool ok = true;
  std::string violation;  // human-readable description when !ok

  explicit operator bool() const noexcept { return ok; }
};

/// Conflict-serializability check over a recorded history.
/// `seed_version` is the version objects were installed with before the
/// run (reads of it need no writer).
SerializabilityReport check_serializable(const std::vector<CommittedTxn>& history,
                                         store::Version seed_version = 1);

/// One cross-shard transaction's declared 2PC intent: every (key, version)
/// its prepares proposed across ALL participant groups, and the outcome the
/// submitting client observed (nullopt when the coordinator died
/// mid-protocol and no outcome was ever reported).
struct CrossShardTxn {
  std::uint64_t tx = 0;
  std::vector<std::pair<store::ObjectKey, store::Version>> writes;
  std::optional<bool> committed;
};

/// Thread-safe append-only log of cross-shard 2PC intents, filled by the
/// coordinators at decision time (and by tests for transactions whose
/// coordinator died before deciding).
class CrossShardLog {
 public:
  void record(CrossShardTxn txn);
  std::vector<CrossShardTxn> snapshot() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<CrossShardTxn> txns_;
};

/// Cross-shard atomicity over a recorded history plus the cluster's final
/// per-key versions: every declared cross-shard transaction installed ALL
/// of its writes or NONE of them, the client-observed outcome matches, and
/// no committed transaction in the history read a version belonging to a
/// cross-shard transaction that was not (fully) installed.
///
/// Installs bump a key's version by exactly one, so versions are dense:
/// write (k, v) was installed iff v <= the final version of k.  That makes
/// the check valid even when later traffic overwrote the key — provided
/// `final_versions` was captured after all in-doubt transactions were
/// resolved and no new traffic raced the capture.
SerializabilityReport check_cross_shard_atomicity(
    const std::vector<CommittedTxn>& history,
    const std::vector<CrossShardTxn>& cross,
    const std::vector<std::pair<store::ObjectKey, store::Version>>&
        final_versions);

}  // namespace acn::nesting
