// Closed-nested transaction context (QR-CN, Section II/IV of the paper).
//
// A Transaction is a stack of *frames*.  Frame 0 is the parent; begin_nested
// pushes a sub-transaction frame.  Each frame owns the read-set entries for
// objects it accessed *first* and the write-set entries it produced:
//   * reads resolve top-down through the frames (read-your-writes, cached
//     re-reads) before going remote;
//   * every remote read ships the union of all frames' read versions for
//     incremental validation;
//   * commit_nested merges the top frame into its parent — the paper's
//     "sub-transaction commits into the private context of its parent";
//   * abort_nested discards the top frame only: that is the partial
//     rollback closed nesting buys.
// classify() implements the paper's abort rule: the abort is partial iff
// every invalidated object was first accessed by the currently executing
// sub-transaction; if any belongs to merged history the whole transaction
// must restart.
//
// The final commit() runs two-phase commit over a write quorum with the
// flattened read/write sets.  Only one level of nesting is supported, per
// the paper's system model (Section IV).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/dtm/abort.hpp"
#include "src/dtm/quorum_stub.hpp"
#include "src/nesting/history.hpp"

namespace acn::nesting {

using dtm::ObjectKey;
using dtm::Record;
using dtm::TxAbort;
using dtm::TxId;
using dtm::Version;
using dtm::VersionedRecord;

/// Outcome classification for a TxAbort observed mid-execution.
enum class AbortScope {
  kPartial,  // only the active sub-transaction must re-execute
  kFull,     // the whole transaction must restart
};

struct TxnStats {
  std::uint64_t remote_reads = 0;
  std::uint64_t cached_reads = 0;
  std::uint64_t writes = 0;
};

class Transaction {
  struct Frame {
    std::unordered_map<ObjectKey, VersionedRecord, store::ObjectKeyHash> reads;
    std::unordered_map<ObjectKey, Record, store::ObjectKeyHash> writes;
  };

 public:
  /// Opaque deep copy of the transaction's buffered state, for
  /// checkpoint-based partial rollback (the alternative partial-abort
  /// technique the paper contrasts closed nesting with in Section III).
  class Checkpoint {
    friend class Transaction;
    std::vector<Frame> frames_;
  };

  Transaction(dtm::QuorumStub& stub, TxId id);

  TxId id() const noexcept { return id_; }

  /// Transactional read.  Returns the buffered/remote value.  Throws
  /// dtm::TxAbort (validation/busy/unavailable) or dtm::ObjectMissing.
  const Record& read(const ObjectKey& key);

  /// Like read(), but also requests contention levels for `classes`
  /// piggybacked on the read RPC when it goes remote; results land in
  /// `levels_out` (aligned with `classes`, untouched on a cached read).
  const Record& read(const ObjectKey& key,
                     const std::vector<dtm::ClassId>& classes,
                     std::vector<std::uint64_t>& levels_out);

  /// Batched transactional read: ONE quorum round fetches every key in
  /// `keys` that is not already buffered (installing them into the current
  /// frame) plus every key in `speculative`, whose records are *returned*
  /// instead of installed so a later frame can adopt them (adopt_read)
  /// without polluting this frame's read set.  Duplicates and buffered keys
  /// are skipped.  `classes`/`levels_out` piggyback contention like read().
  /// Throws exactly what read() throws.
  std::vector<std::pair<ObjectKey, VersionedRecord>> read_many(
      const std::vector<ObjectKey>& keys,
      const std::vector<ObjectKey>& speculative = {},
      const std::vector<dtm::ClassId>& classes = {},
      std::vector<std::uint64_t>* levels_out = nullptr);

  /// Install a record fetched earlier (by a speculative read_many) into the
  /// current frame, as if read() had gone remote now.  The adopted version
  /// joins every later incremental-validation payload, so a record that went
  /// stale since the fetch aborts exactly like a stale read — and because it
  /// lives in the adopting frame, that abort classifies as partial.  Returns
  /// false (installing nothing) when the key is already buffered.
  bool adopt_read(const ObjectKey& key, const VersionedRecord& record);

  /// Buffer a write.  The object must have been read by this transaction
  /// first (QR-DTM write semantics: the first write fetches); use insert()
  /// for blind creation of fresh objects.
  void write(const ObjectKey& key, Record value);

  /// Blind insert of a fresh object (no remote fetch, version floor 0).
  void insert(const ObjectKey& key, Record value);

  bool has_read(const ObjectKey& key) const;
  bool has_written(const ObjectKey& key) const;

  // -- closed nesting ------------------------------------------------------
  void begin_nested();
  void commit_nested();  // merge top frame into its parent
  void abort_nested();   // discard top frame (partial rollback)
  std::size_t depth() const noexcept { return frames_.size(); }

  /// Partial iff a sub-transaction is active and no invalidated object
  /// belongs to a frame below the top.
  AbortScope classify(const TxAbort& abort) const;

  // -- commit --------------------------------------------------------------
  /// Two-phase commit of the flattened sets; requires depth() == 1.
  /// Throws TxAbort on conflict.  Read-only transactions run a final
  /// validation round instead of 2PC.
  void commit();

  /// Discard all buffered state and adopt a fresh id (full restart).
  void reset(TxId new_id);

  // -- checkpointing ---------------------------------------------------
  /// Deep copy of all frames.  O(read-set + write-set) — the cost the
  /// paper identifies as checkpointing's handicap versus closed nesting.
  Checkpoint checkpoint() const {
    Checkpoint point;
    point.frames_ = frames_;
    return point;
  }

  /// Roll the buffered state back to `point` (reads/writes performed after
  /// it are discarded; nothing was visible remotely, so no network I/O).
  void restore(Checkpoint point) { frames_ = std::move(point.frames_); }

  std::size_t read_set_size() const;
  std::size_t write_set_size() const;
  const TxnStats& stats() const noexcept { return stats_; }

  /// When set, a successful commit() appends the transaction's read and
  /// installed versions to `log` (for offline serializability checking).
  void set_history(HistoryLog* log) noexcept { history_ = log; }

  /// When set, the transaction records cache-hit/remote read counters, the
  /// partial/full classification tallies, and a commit-phase trace span.
  void set_obs(obs::Observability* obs) noexcept { obs_ = obs; }

 private:
  AbortScope classify_scope(const TxAbort& abort) const;
  /// All frames' read versions, for incremental-validation payloads.
  std::vector<dtm::VersionCheck> all_version_checks() const;
  const Record* find_buffered(const ObjectKey& key) const;
  const Record& remote_read(const ObjectKey& key,
                            const std::vector<dtm::ClassId>& classes,
                            std::vector<std::uint64_t>* levels_out);

  dtm::QuorumStub& stub_;
  TxId id_;
  std::vector<Frame> frames_;
  TxnStats stats_;
  HistoryLog* history_ = nullptr;
  obs::Observability* obs_ = nullptr;
};

/// Monotonic transaction-id source shared by all clients in the process.
TxId next_tx_id();

}  // namespace acn::nesting
