#include "src/workloads/tpcc.hpp"

#include <stdexcept>

namespace acn::workloads {
namespace {

using ir::ProgramBuilder;
using ir::Record;
using ir::TxEnv;
using ir::VarId;
using store::Field;

// Record layouts.
// warehouse: [ytd, tax_permille]
constexpr std::size_t kWhYtd = 0, kWhTax = 1;
// district: [next_o_id, ytd, tax_permille]
constexpr std::size_t kDNextOid = 0, kDYtd = 1, kDTax = 2;
// customer: [balance, ytd_payment, payment_cnt, delivered_credit, delivery_cnt]
constexpr std::size_t kCBalance = 0, kCYtdPayment = 1, kCPaymentCnt = 2,
                      kCDelivered = 3, kCDeliveryCnt = 4;
// item: [price]
constexpr std::size_t kIPrice = 0;
// stock: [quantity, ytd, order_cnt]
constexpr std::size_t kSQty = 0, kSYtd = 1, kSCnt = 2;
// order: [c_id, carrier, ol_cnt]
constexpr std::size_t kOCid = 0, kOCarrier = 1, kOOlCnt = 2;
// order line: [item, qty, amount, delivered]
constexpr std::size_t kOlItem = 0, kOlQty = 1, kOlAmount = 2, kOlDelivered = 3;
// history: [customer_global, amount]
// cursor: [next_o_id_to_deliver]

}  // namespace

Tpcc::Tpcc(TpccConfig config)
    : config_(config),
      districts_per_warehouse_(config.districts_per_warehouse),
      customers_per_district_(config.customers_per_district),
      n_items_(config.n_items),
      order_ring_(config.order_ring) {
  if (config_.n_warehouses == 0 || config_.districts_per_warehouse == 0 ||
      config_.customers_per_district == 0 || config_.n_items < kOrderLines ||
      config_.order_ring == 0)
    throw std::invalid_argument("Tpcc: bad scale configuration");
  if (config_.min_order_lines < 1 ||
      config_.max_order_lines < config_.min_order_lines ||
      config_.max_order_lines >= kLineSlots)
    throw std::invalid_argument("Tpcc: bad order-line range");
  if (config_.w_neworder > 0) {
    const std::size_t variants =
        config_.max_order_lines - config_.min_order_lines + 1;
    for (std::size_t lines = config_.min_order_lines;
         lines <= config_.max_order_lines; ++lines) {
      auto p = make_neworder(lines);
      p.weight = config_.w_neworder / static_cast<double>(variants);
      profiles_.push_back(std::move(p));
    }
  }
  if (config_.w_payment > 0) {
    auto p = make_payment();
    p.weight = config_.w_payment;
    profiles_.push_back(std::move(p));
  }
  if (config_.w_delivery > 0) {
    auto p = config_.delivery_all_districts ? make_delivery_all()
                                            : make_delivery();
    p.weight = config_.w_delivery;
    profiles_.push_back(std::move(p));
  }
  if (config_.w_orderstatus > 0) {
    auto p = make_orderstatus();
    p.weight = config_.w_orderstatus;
    profiles_.push_back(std::move(p));
  }
  if (config_.w_stocklevel > 0) {
    auto p = make_stocklevel();
    p.weight = config_.w_stocklevel;
    profiles_.push_back(std::move(p));
  }
  if (profiles_.empty())
    throw std::invalid_argument("Tpcc: profile mix is all zero");
}

TxProfile Tpcc::make_neworder(std::size_t order_lines) const {
  // Params: 0=w, 1=d, 2=c, 3=items[order_lines], 4=qtys[order_lines],
  // 5=supply warehouses[order_lines] (== w unless the line is remote).
  ProgramBuilder b("tpcc.neworder." + std::to_string(order_lines), 6);
  const VarId p_w = b.param(0), p_d = b.param(1), p_c = b.param(2);
  const VarId p_items = b.param(3), p_qtys = b.param(4);
  const VarId p_supply = b.param(5);

  const VarId wh = b.remote_read(
      kWarehouse, {p_w},
      [this, p_w](const TxEnv& e) { return warehouse_key(e.geti(p_w)); },
      "read warehouse");
  const VarId dist = b.remote_read(
      kDistrict, {p_w, p_d},
      [this, p_w, p_d](const TxEnv& e) {
        return district_key(e.geti(p_w), e.geti(p_d));
      },
      "read district");
  const VarId oid = b.fresh_var();
  b.local({dist}, {dist, oid},
          [dist, oid](TxEnv& e) {
            Record r = e.get(dist);
            e.seti(oid, r[kDNextOid]);
            r[kDNextOid] += 1;
            e.write_object(dist, std::move(r));
          },
          "take o_id");
  const VarId cust = b.remote_read(
      kCustomer, {p_w, p_d, p_c},
      [this, p_w, p_d, p_c](const TxEnv& e) {
        return customer_key(e.geti(p_w), e.geti(p_d), e.geti(p_c));
      },
      "read customer");

  std::vector<VarId> item_var(order_lines);
  for (std::size_t l = 0; l < order_lines; ++l) {
    item_var[l] = b.remote_read(
        kItem, {p_items},
        [this, p_items, l](const TxEnv& e) {
          return item_key(e.geti(p_items, l));
        },
        "read item " + std::to_string(l));
    const VarId stock = b.remote_read(
        kStock, {p_supply, p_items},
        [this, p_supply, p_items, l](const TxEnv& e) {
          return stock_key(e.geti(p_supply, l), e.geti(p_items, l));
        },
        "read stock " + std::to_string(l));
    b.local({stock, p_qtys}, {stock},
            [stock, p_qtys, l](TxEnv& e) {
              Record r = e.get(stock);
              const Field q = e.geti(p_qtys, l);
              if (r[kSQty] - q < 10)
                r[kSQty] += 91 - q;  // TPC-C restock rule
              else
                r[kSQty] -= q;
              r[kSYtd] += q;
              r[kSCnt] += 1;
              e.write_object(stock, std::move(r));
            },
            "update stock " + std::to_string(l));
  }

  b.local({oid, p_w, p_d, p_c}, {},
          [this, oid, p_w, p_d, p_c, order_lines](TxEnv& e) {
            const Field w = e.geti(p_w), d = e.geti(p_d), o = e.geti(oid);
            e.insert_object(order_key(w, d, o),
                            Record{e.geti(p_c), 0,
                                   static_cast<Field>(order_lines)});
            e.insert_object(new_order_key(w, d, o), Record{o});
          },
          "insert order");

  for (std::size_t l = 0; l < order_lines; ++l) {
    b.local({oid, item_var[l], p_items, p_qtys, p_w, p_d}, {},
            [this, oid, iv = item_var[l], p_items, p_qtys, p_w, p_d,
             l](TxEnv& e) {
              const Field w = e.geti(p_w), d = e.geti(p_d), o = e.geti(oid);
              const Field qty = e.geti(p_qtys, l);
              const Field amount = e.get(iv)[kIPrice] * qty;
              e.insert_object(order_line_key(w, d, o, l),
                              Record{e.geti(p_items, l), qty, amount, 0});
            },
            "insert line " + std::to_string(l));
  }

  const VarId total = b.fresh_var();
  std::vector<VarId> total_reads{wh, dist, cust, p_qtys};
  total_reads.insert(total_reads.end(), item_var.begin(), item_var.end());
  b.local(total_reads, {total},
          [wh, dist, item_var, p_qtys, total](TxEnv& e) {
            Field sum = 0;
            for (std::size_t l = 0; l < item_var.size(); ++l)
              sum += e.get(item_var[l])[kIPrice] * e.geti(p_qtys, l);
            const Field tax = e.get(wh)[kWhTax] + e.get(dist)[kDTax];
            e.seti(total, sum * (1000 + tax) / 1000);
          },
          "compute total");

  TxProfile profile;
  profile.program = std::make_unique<ir::TxProgram>(b.build());
  profile.static_model =
      build_dependency_model(*profile.program, AttachPolicy::kLatestProducer);

  // Manual QR-CN: {warehouse, district} | {customer} | one block per
  // (item, stock) pair — program order, the spec's natural phases.
  BlockSequence manual;
  for (std::size_t u = 0; u < profile.static_model.units.size(); ++u) {
    const ir::ClassId cls = profile.static_model.units[u].classes.front();
    const bool starts_block =
        manual.empty() || cls == kCustomer || cls == kItem;
    if (starts_block)
      manual.push_back({{u}});
    else
      manual.back().units.push_back(u);
  }
  profile.manual_sequence = std::move(manual);
  if (!sequence_valid(profile.manual_sequence, profile.static_model))
    throw std::logic_error("tpcc.neworder: manual sequence invalid");

  const TpccConfig cfg = config_;
  profile.make_params = [cfg, order_lines](Rng& rng, int /*phase*/) {
    const Field w = static_cast<Field>(rng.uniform(0, cfg.n_warehouses - 1));
    Record items(order_lines), qtys(order_lines), supply(order_lines);
    for (std::size_t l = 0; l < order_lines; ++l) {
      items[l] = static_cast<Field>(nurand(rng, 255, 0, cfg.n_items - 1, 42));
      qtys[l] = static_cast<Field>(rng.uniform(1, 10));
      supply[l] = w;
      if (cfg.remote_warehouse_prob > 0 && cfg.n_warehouses > 1 &&
          rng.bernoulli(cfg.remote_warehouse_prob)) {
        // A remote line: supplied by a different warehouse (TPC-C 2.4.1.5).
        const Field other =
            static_cast<Field>(rng.uniform(0, cfg.n_warehouses - 2));
        supply[l] = other >= w ? other + 1 : other;
      }
    }
    return std::vector<Record>{
        Record{w},
        Record{static_cast<Field>(
            rng.uniform(0, cfg.districts_per_warehouse - 1))},
        Record{static_cast<Field>(
            rng.uniform(0, cfg.customers_per_district - 1))},
        std::move(items), std::move(qtys), std::move(supply)};
  };
  return profile;
}

TxProfile Tpcc::make_payment() const {
  // Params: 0=w, 1=d, 2=c, 3=amount, 4=history id (warehouse-encoded),
  // 5=customer's home warehouse (== w unless the customer is remote).
  ProgramBuilder b("tpcc.payment", 6);
  const VarId p_w = b.param(0), p_d = b.param(1), p_c = b.param(2);
  const VarId p_amt = b.param(3), p_hist = b.param(4);
  const VarId p_cw = b.param(5);

  const VarId wh = b.remote_read(
      kWarehouse, {p_w},
      [this, p_w](const TxEnv& e) { return warehouse_key(e.geti(p_w)); },
      "read warehouse");
  b.local({wh, p_amt}, {wh},
          [wh, p_amt](TxEnv& e) {
            Record r = e.get(wh);
            r[kWhYtd] += e.geti(p_amt);
            e.write_object(wh, std::move(r));
          },
          "update warehouse ytd");
  const VarId dist = b.remote_read(
      kDistrict, {p_w, p_d},
      [this, p_w, p_d](const TxEnv& e) {
        return district_key(e.geti(p_w), e.geti(p_d));
      },
      "read district");
  b.local({dist, p_amt}, {dist},
          [dist, p_amt](TxEnv& e) {
            Record r = e.get(dist);
            r[kDYtd] += e.geti(p_amt);
            e.write_object(dist, std::move(r));
          },
          "update district ytd");
  const VarId cust = b.remote_read(
      kCustomer, {p_cw, p_d, p_c},
      [this, p_cw, p_d, p_c](const TxEnv& e) {
        return customer_key(e.geti(p_cw), e.geti(p_d), e.geti(p_c));
      },
      "read customer");
  b.local({cust, p_amt}, {cust},
          [cust, p_amt](TxEnv& e) {
            Record r = e.get(cust);
            const Field amt = e.geti(p_amt);
            r[kCBalance] -= amt;
            r[kCYtdPayment] += amt;
            r[kCPaymentCnt] += 1;
            e.write_object(cust, std::move(r));
          },
          "pay");
  b.local({cust, p_cw, p_d, p_c, p_amt, p_hist}, {},
          [this, p_cw, p_d, p_c, p_amt, p_hist](TxEnv& e) {
            const auto c_key = customer_key(e.geti(p_cw), e.geti(p_d),
                                            e.geti(p_c));
            e.insert_object(history_key(e.geti(p_hist)),
                            Record{static_cast<Field>(c_key.id),
                                   e.geti(p_amt)});
          },
          "insert history");

  TxProfile profile;
  profile.program = std::make_unique<ir::TxProgram>(b.build());
  profile.static_model =
      build_dependency_model(*profile.program, AttachPolicy::kLatestProducer);
  profile.manual_sequence = initial_sequence(profile.static_model);

  const TpccConfig cfg = config_;
  profile.make_params = [cfg](Rng& rng, int /*phase*/) {
    const Field w = static_cast<Field>(rng.uniform(0, cfg.n_warehouses - 1));
    Field c_w = w;
    if (cfg.remote_warehouse_prob > 0 && cfg.n_warehouses > 1 &&
        rng.bernoulli(cfg.remote_warehouse_prob)) {
      // Remote customer: paid at this terminal, homed elsewhere (2.5.1.2).
      const Field other =
          static_cast<Field>(rng.uniform(0, cfg.n_warehouses - 2));
      c_w = other >= w ? other + 1 : other;
    }
    return std::vector<Record>{
        Record{w},
        Record{static_cast<Field>(
            rng.uniform(0, cfg.districts_per_warehouse - 1))},
        Record{static_cast<Field>(
            rng.uniform(0, cfg.customers_per_district - 1))},
        Record{static_cast<Field>(rng.uniform(1, 500))},
        Record{history_id(w, rng.uniform(0, (1ULL << 40) - 1))},
        Record{c_w}};
  };
  return profile;
}

void Tpcc::delivery_ops(ProgramBuilder& b, VarId p_w,
                        std::vector<VarId> d_deps,
                        std::function<Field(const TxEnv&)> d_of,
                        VarId p_carrier, const std::string& suffix) const {
  auto key_deps = [&](std::initializer_list<VarId> extra) {
    std::vector<VarId> deps{p_w};
    deps.insert(deps.end(), d_deps.begin(), d_deps.end());
    deps.insert(deps.end(), extra.begin(), extra.end());
    return deps;
  };

  const VarId cursor = b.remote_read(
      kDeliveryCursor, key_deps({}),
      [this, p_w, d_of](const TxEnv& e) {
        return cursor_key(e.geti(p_w), d_of(e));
      },
      "read cursor" + suffix);
  const VarId slot = b.fresh_var();
  b.local({cursor}, {cursor, slot},
          [cursor, slot](TxEnv& e) {
            Record r = e.get(cursor);
            e.seti(slot, r[0]);
            r[0] += 1;
            e.write_object(cursor, std::move(r));
          },
          "advance cursor" + suffix);
  const VarId order = b.remote_read(
      kOrder, key_deps({slot}),
      [this, p_w, d_of, slot](const TxEnv& e) {
        return order_key(e.geti(p_w), d_of(e), e.geti(slot));
      },
      "read order" + suffix);
  b.local({order, p_carrier}, {order},
          [order, p_carrier](TxEnv& e) {
            Record r = e.get(order);
            r[kOCarrier] = e.geti(p_carrier);
            e.write_object(order, std::move(r));
          },
          "stamp carrier" + suffix);
  const VarId line = b.remote_read(
      kOrderLine, key_deps({slot}),
      [this, p_w, d_of, slot](const TxEnv& e) {
        return order_line_key(e.geti(p_w), d_of(e), e.geti(slot), 0);
      },
      "read order line" + suffix);
  const VarId amount = b.fresh_var();
  b.local({line}, {line, amount},
          [line, amount](TxEnv& e) {
            Record r = e.get(line);
            e.seti(amount, r[kOlAmount]);
            r[kOlDelivered] = 1;
            e.write_object(line, std::move(r));
          },
          "stamp line" + suffix);
  const VarId cust = b.remote_read(
      kCustomer, key_deps({order}),
      [this, p_w, d_of, order](const TxEnv& e) {
        return customer_key(e.geti(p_w), d_of(e), e.get(order)[kOCid]);
      },
      "read customer" + suffix);
  b.local({cust, amount}, {cust},
          [cust, amount](TxEnv& e) {
            Record r = e.get(cust);
            const Field amt = e.geti(amount);
            r[kCBalance] += amt;
            r[kCDelivered] += amt;
            r[kCDeliveryCnt] += 1;
            e.write_object(cust, std::move(r));
          },
          "credit customer" + suffix);
}

TxProfile Tpcc::make_delivery() const {
  // Params: 0=w, 1=d, 2=carrier.
  ProgramBuilder b("tpcc.delivery", 3);
  const VarId p_w = b.param(0), p_d = b.param(1), p_carrier = b.param(2);
  delivery_ops(b, p_w, {p_d},
               [p_d](const TxEnv& e) { return e.geti(p_d); }, p_carrier, "");

  TxProfile profile;
  profile.program = std::make_unique<ir::TxProgram>(b.build());
  profile.static_model =
      build_dependency_model(*profile.program, AttachPolicy::kLatestProducer);
  profile.manual_sequence = initial_sequence(profile.static_model);

  const TpccConfig cfg = config_;
  profile.make_params = [cfg](Rng& rng, int /*phase*/) {
    return std::vector<Record>{
        Record{static_cast<Field>(rng.uniform(0, cfg.n_warehouses - 1))},
        Record{static_cast<Field>(
            rng.uniform(0, cfg.districts_per_warehouse - 1))},
        Record{static_cast<Field>(rng.uniform(1, 10))}};
  };
  return profile;
}

TxProfile Tpcc::make_delivery_all() const {
  // Full-spec Delivery: one transaction processes every district of the
  // warehouse.  Params: 0=w, 1=carrier.
  ProgramBuilder b("tpcc.delivery_all", 2);
  const VarId p_w = b.param(0), p_carrier = b.param(1);
  for (Field d = 0; d < static_cast<Field>(config_.districts_per_warehouse);
       ++d) {
    delivery_ops(b, p_w, {}, [d](const TxEnv&) { return d; }, p_carrier,
                 " d" + std::to_string(d));
  }

  TxProfile profile;
  profile.program = std::make_unique<ir::TxProgram>(b.build());
  profile.static_model =
      build_dependency_model(*profile.program, AttachPolicy::kLatestProducer);
  // Manual QR-CN: one sub-transaction per district (each district's four
  // accesses form a natural unit-of-work).
  BlockSequence manual;
  const std::size_t units = profile.static_model.units.size();
  const std::size_t per_district = units / config_.districts_per_warehouse;
  for (std::size_t u = 0; u < units; ++u) {
    if (per_district == 0 || u % per_district == 0) manual.push_back({{u}});
    else manual.back().units.push_back(u);
  }
  profile.manual_sequence = std::move(manual);
  if (!sequence_valid(profile.manual_sequence, profile.static_model))
    throw std::logic_error("tpcc.delivery_all: manual sequence invalid");

  const TpccConfig cfg = config_;
  profile.make_params = [cfg](Rng& rng, int /*phase*/) {
    return std::vector<Record>{
        Record{static_cast<Field>(rng.uniform(0, cfg.n_warehouses - 1))},
        Record{static_cast<Field>(rng.uniform(1, 10))}};
  };
  return profile;
}

TxProfile Tpcc::make_orderstatus() const {
  // Read-only: customer's latest order and its first line.
  // Params: 0=w, 1=d, 2=c.
  ProgramBuilder b("tpcc.orderstatus", 3);
  const VarId p_w = b.param(0), p_d = b.param(1), p_c = b.param(2);

  const VarId cust = b.remote_read(
      kCustomer, {p_w, p_d, p_c},
      [this, p_w, p_d, p_c](const TxEnv& e) {
        return customer_key(e.geti(p_w), e.geti(p_d), e.geti(p_c));
      },
      "read customer");
  const VarId dist = b.remote_read(
      kDistrict, {p_w, p_d},
      [this, p_w, p_d](const TxEnv& e) {
        return district_key(e.geti(p_w), e.geti(p_d));
      },
      "read district");
  const VarId last_oid = b.fresh_var();
  b.local({dist}, {last_oid},
          [dist, last_oid](TxEnv& e) {
            e.seti(last_oid, e.get(dist)[kDNextOid] - 1);
          },
          "latest o_id");
  const VarId order = b.remote_read(
      kOrder, {p_w, p_d, last_oid},
      [this, p_w, p_d, last_oid](const TxEnv& e) {
        return order_key(e.geti(p_w), e.geti(p_d), e.geti(last_oid));
      },
      "read order");
  const VarId line = b.remote_read(
      kOrderLine, {p_w, p_d, last_oid},
      [this, p_w, p_d, last_oid](const TxEnv& e) {
        return order_line_key(e.geti(p_w), e.geti(p_d), e.geti(last_oid), 0);
      },
      "read order line");
  const VarId status = b.fresh_var();
  b.local({cust, order, line}, {status},
          [=](TxEnv& e) {
            e.seti(status, e.get(cust)[kCBalance] + e.get(order)[kOCarrier] +
                               e.get(line)[kOlAmount]);
          },
          "summarize");

  TxProfile profile;
  profile.program = std::make_unique<ir::TxProgram>(b.build());
  profile.static_model =
      build_dependency_model(*profile.program, AttachPolicy::kLatestProducer);
  profile.manual_sequence = initial_sequence(profile.static_model);

  const TpccConfig cfg = config_;
  profile.make_params = [cfg](Rng& rng, int /*phase*/) {
    return std::vector<Record>{
        Record{static_cast<Field>(rng.uniform(0, cfg.n_warehouses - 1))},
        Record{static_cast<Field>(
            rng.uniform(0, cfg.districts_per_warehouse - 1))},
        Record{static_cast<Field>(
            rng.uniform(0, cfg.customers_per_district - 1))}};
  };
  return profile;
}

TxProfile Tpcc::make_stocklevel() const {
  // Read-only: how low is the stock behind the district's latest order?
  // Params: 0=w, 1=d, 2=threshold.
  ProgramBuilder b("tpcc.stocklevel", 3);
  const VarId p_w = b.param(0), p_d = b.param(1), p_threshold = b.param(2);

  const VarId dist = b.remote_read(
      kDistrict, {p_w, p_d},
      [this, p_w, p_d](const TxEnv& e) {
        return district_key(e.geti(p_w), e.geti(p_d));
      },
      "read district");
  const VarId last_oid = b.fresh_var();
  b.local({dist}, {last_oid},
          [dist, last_oid](TxEnv& e) {
            e.seti(last_oid, e.get(dist)[kDNextOid] - 1);
          },
          "latest o_id");
  const VarId line = b.remote_read(
      kOrderLine, {p_w, p_d, last_oid},
      [this, p_w, p_d, last_oid](const TxEnv& e) {
        return order_line_key(e.geti(p_w), e.geti(p_d), e.geti(last_oid), 0);
      },
      "read order line");
  const VarId stock = b.remote_read(
      kStock, {p_w, line},
      [this, p_w, line](const TxEnv& e) {
        return stock_key(e.geti(p_w), e.get(line)[kOlItem]);
      },
      "read stock");
  const VarId low = b.fresh_var();
  b.local({stock, p_threshold}, {low},
          [=](TxEnv& e) {
            e.seti(low, e.get(stock)[kSQty] < e.geti(p_threshold) ? 1 : 0);
          },
          "compare threshold");

  TxProfile profile;
  profile.program = std::make_unique<ir::TxProgram>(b.build());
  profile.static_model =
      build_dependency_model(*profile.program, AttachPolicy::kLatestProducer);
  profile.manual_sequence = initial_sequence(profile.static_model);

  const TpccConfig cfg = config_;
  profile.make_params = [cfg](Rng& rng, int /*phase*/) {
    return std::vector<Record>{
        Record{static_cast<Field>(rng.uniform(0, cfg.n_warehouses - 1))},
        Record{static_cast<Field>(
            rng.uniform(0, cfg.districts_per_warehouse - 1))},
        Record{static_cast<Field>(rng.uniform(10, 20))}};
  };
  return profile;
}

void Tpcc::seed_objects(const SeedSink& sink) {
  const auto W = static_cast<Field>(config_.n_warehouses);
  const auto D = static_cast<Field>(config_.districts_per_warehouse);
  const auto C = static_cast<Field>(config_.customers_per_district);
  const auto I = static_cast<Field>(config_.n_items);
  const auto R = static_cast<Field>(config_.order_ring);

  for (Field i = 0; i < I; ++i)
    sink(item_key(i), Record{100 + i % 100});

  for (Field w = 0; w < W; ++w) {
    sink(warehouse_key(w), Record{0, 50 + w * 10});
    for (Field i = 0; i < I; ++i) {
      const Field qty = config_.initial_stock_quantity != 0
                            ? config_.initial_stock_quantity
                            : 50 + i % 50;
      sink(stock_key(w, i), Record{qty, 0, 0});
    }
    for (Field d = 0; d < D; ++d) {
      sink(district_key(w, d), Record{R, 0, (w * 3 + d) % 20});
      sink(cursor_key(w, d), Record{0});
      for (Field c = 0; c < C; ++c)
        sink(customer_key(w, d, c),
             Record{config_.initial_customer_balance, 0, 0, 0, 0});
      for (Field o = 0; o < R; ++o) {
        sink(order_key(w, d, o),
             Record{o % C, 0, static_cast<Field>(kOrderLines)});
        sink(new_order_key(w, d, o), Record{o});
        for (std::size_t l = 0; l < kOrderLines; ++l) {
          const Field item = (o * 7 + static_cast<Field>(l)) % I;
          const Field qty = 1 + static_cast<Field>(l);
          sink(order_line_key(w, d, o, l),
               Record{item, qty, (100 + item % 100) * qty, 0});
        }
      }
    }
  }
}

Placement Tpcc::placement() const {
  // Every class's key layout lets the home warehouse be derived by integer
  // division — that derivation IS the placement, so one warehouse's entire
  // slice (districts, customers, stock, order rings, history) lands on one
  // group and a no-remote transaction never leaves it.
  const std::uint64_t dpw = districts_per_warehouse_;
  const std::uint64_t cpd = customers_per_district_;
  const std::uint64_t items = n_items_;
  const std::uint64_t ring = order_ring_;
  Placement placement;
  placement.shard_of = [dpw, cpd, items, ring](const store::ObjectKey& key) {
    switch (key.cls) {
      case kWarehouse:
        return static_cast<std::uint32_t>(key.id);
      case kDistrict:
      case kDeliveryCursor:
        return static_cast<std::uint32_t>(key.id / dpw);
      case kCustomer:
        return static_cast<std::uint32_t>(key.id / (dpw * cpd));
      case kStock:
        return static_cast<std::uint32_t>(key.id / items);
      case kOrder:
      case kNewOrder:
        return static_cast<std::uint32_t>(key.id / (ring * dpw));
      case kOrderLine:
        return static_cast<std::uint32_t>(key.id / (kLineSlots * ring * dpw));
      case kHistory:
        return static_cast<std::uint32_t>(key.id >> kHistoryWarehouseShift);
      default:  // kItem (replicated): nominal home only
        return std::uint32_t{0};
    }
  };
  placement.replicated_classes = {kItem};
  return placement;
}

void Tpcc::check_invariants(const std::vector<dtm::Server*>& servers) const {
  const auto W = static_cast<Field>(config_.n_warehouses);
  const auto D = static_cast<Field>(config_.districts_per_warehouse);
  const auto C = static_cast<Field>(config_.customers_per_district);
  const auto I = static_cast<Field>(config_.n_items);
  const auto R = static_cast<Field>(config_.order_ring);

  for (Field w = 0; w < W; ++w) {
    for (Field i = 0; i < I; ++i) {
      const auto stock = latest_value(servers, stock_key(w, i)).value;
      if (stock[kSQty] < 1)
        throw std::runtime_error("tpcc: stock quantity below 1 at w=" +
                                 std::to_string(w) + " i=" + std::to_string(i));
    }
    for (Field d = 0; d < D; ++d) {
      const auto district = latest_value(servers, district_key(w, d)).value;
      if (district[kDNextOid] < R)
        throw std::runtime_error("tpcc: district next_o_id regressed");
      for (Field c = 0; c < C; ++c) {
        const auto cust = latest_value(servers, customer_key(w, d, c)).value;
        const Field net =
            cust[kCBalance] + cust[kCYtdPayment] - cust[kCDelivered];
        if (net != config_.initial_customer_balance)
          throw std::runtime_error(
              "tpcc: customer balance conservation violated at w=" +
              std::to_string(w) + " d=" + std::to_string(d) +
              " c=" + std::to_string(c));
      }
    }
  }
}

}  // namespace acn::workloads
