// TPC-C benchmark (scaled-down, in-memory) over the DTM object store.
//
// Tables: warehouse, district, customer, item, stock, order, new-order,
// order-line, history, plus a per-district delivery cursor standing in for
// the "oldest undelivered new-order" index lookup.  Orders live in a ring
// of `order_ring` slots per district: NewOrder inserts into slot
// o_id % ring, Delivery consumes slots through the cursor, so steady state
// needs no unbounded growth (slots are re-inserted as ids advance; the
// access *pattern* — insert fresh order objects, deliver the oldest — is
// preserved, which is what contention depends on).
//
// Transaction profiles implemented (the ones Figure 4 uses):
//   * NewOrder — read warehouse; read district and take/advance next_o_id
//     (the hot spot); read customer; per order line (fixed at 5): read
//     item, read+update stock; insert order, new-order and order lines.
//   * Payment — update warehouse YTD (hot: only a couple of warehouses),
//     update district YTD (hot), update customer balance, insert history.
//   * Delivery — advance the district's delivery cursor, stamp the order's
//     carrier, stamp the first order line's delivery date, credit the
//     customer.  All accesses spread uniformly over many objects: the
//     uniform-low-contention regime of Figure 4(d).
//
// Checked invariants: stock quantity stays >= 1 (the TPC-C restock rule);
// district next_o_id never regresses; per customer,
// balance + ytd_payment - delivered_credit == initial balance (Payment
// moves balance into ytd_payment; Delivery credits balance and records the
// same amount in delivered_credit).
#pragma once

#include "src/workloads/workload.hpp"

namespace acn::workloads {

struct TpccConfig {
  std::size_t n_warehouses = 2;
  std::size_t districts_per_warehouse = 10;
  std::size_t customers_per_district = 100;
  std::size_t n_items = 400;
  std::size_t order_ring = 64;  // pre-seeded order slots per district
  store::Field initial_customer_balance = 5'000;

  /// NewOrder order-line count range (TPC-C: uniform 5..15).  The IR is a
  /// static op list, so one program variant is built per count and the
  /// profile weight is split across them.  The figure benches keep the
  /// default single variant (5) for run-to-run comparability.
  std::size_t min_order_lines = 5;
  std::size_t max_order_lines = 5;

  /// Full-spec Delivery processes *all* districts of a warehouse in one
  /// transaction (~4x districts remote accesses — the long-transaction
  /// case where partial rollback saves the most work).  The default
  /// one-district variant keeps Figure 4(d)'s uniform-low-contention
  /// regime.
  bool delivery_all_districts = false;

  // Profile mix; the figure benches set exactly one or two of these.
  double w_neworder = 1.0;
  double w_payment = 0.0;
  double w_delivery = 0.0;
  double w_orderstatus = 0.0;  // read-only
  double w_stocklevel = 0.0;   // read-only

  /// Probability that a NewOrder line is supplied by a foreign warehouse
  /// (its stock row lives there) and that a Payment customer belongs to a
  /// foreign warehouse — TPC-C's ~1%/15% remote mixes.  Under
  /// warehouse-per-group placement a remote access makes the transaction
  /// genuinely cross-shard.  Requires n_warehouses >= 2 when > 0.
  double remote_warehouse_prob = 0.0;

  /// Non-zero: seed every stock row at this quantity instead of the spec's
  /// 50 + i % 50 pattern.  A large value keeps stock far above the restock
  /// threshold so stock updates commute — what the sharded-vs-reference
  /// state-equality gate needs (the restock rule is order-dependent).
  store::Field initial_stock_quantity = 0;
};

class Tpcc final : public Workload {
 public:
  static constexpr ir::ClassId kWarehouse = 1;
  static constexpr ir::ClassId kDistrict = 2;
  static constexpr ir::ClassId kCustomer = 3;
  static constexpr ir::ClassId kItem = 4;
  static constexpr ir::ClassId kStock = 5;
  static constexpr ir::ClassId kOrder = 6;
  static constexpr ir::ClassId kNewOrder = 7;
  static constexpr ir::ClassId kOrderLine = 8;
  static constexpr ir::ClassId kHistory = 9;
  static constexpr ir::ClassId kDeliveryCursor = 10;

  static constexpr std::size_t kOrderLines = 5;  // seeded lines per ring order
  static constexpr std::size_t kLineSlots = 16;  // key stride per order

  explicit Tpcc(TpccConfig config = {});

  std::string name() const override { return "tpcc"; }
  void seed_objects(const SeedSink& sink) override;
  /// Warehouse-per-group placement: every key derives its home warehouse
  /// (districts, customers, stock, orders, lines, cursors — and history,
  /// whose id encodes the warehouse in its top bits), so a no-remote
  /// transaction is single-shard by construction.  The read-only item
  /// table is replicated on every group.
  Placement placement() const override;
  const std::vector<TxProfile>& profiles() const override { return profiles_; }
  void check_invariants(const std::vector<dtm::Server*>& servers) const override;

  const TpccConfig& config() const noexcept { return config_; }

  // -- key construction ------------------------------------------------
  std::uint64_t district_index(store::Field w, store::Field d) const {
    return static_cast<std::uint64_t>(w) * districts_per_warehouse_ +
           static_cast<std::uint64_t>(d);
  }
  store::ObjectKey warehouse_key(store::Field w) const {
    return {kWarehouse, static_cast<std::uint64_t>(w)};
  }
  store::ObjectKey district_key(store::Field w, store::Field d) const {
    return {kDistrict, district_index(w, d)};
  }
  store::ObjectKey cursor_key(store::Field w, store::Field d) const {
    return {kDeliveryCursor, district_index(w, d)};
  }
  store::ObjectKey customer_key(store::Field w, store::Field d,
                                store::Field c) const {
    return {kCustomer,
            district_index(w, d) * customers_per_district_ +
                static_cast<std::uint64_t>(c)};
  }
  store::ObjectKey item_key(store::Field i) const {
    return {kItem, static_cast<std::uint64_t>(i)};
  }
  store::ObjectKey stock_key(store::Field w, store::Field i) const {
    return {kStock, static_cast<std::uint64_t>(w) * n_items_ +
                        static_cast<std::uint64_t>(i)};
  }
  std::uint64_t order_slot(store::Field w, store::Field d,
                           store::Field o_id) const {
    return district_index(w, d) * order_ring_ +
           static_cast<std::uint64_t>(o_id) % order_ring_;
  }
  store::ObjectKey order_key(store::Field w, store::Field d,
                             store::Field o_id) const {
    return {kOrder, order_slot(w, d, o_id)};
  }
  store::ObjectKey new_order_key(store::Field w, store::Field d,
                                 store::Field o_id) const {
    return {kNewOrder, order_slot(w, d, o_id)};
  }
  store::ObjectKey order_line_key(store::Field w, store::Field d,
                                  store::Field o_id, std::size_t line) const {
    return {kOrderLine, order_slot(w, d, o_id) * kLineSlots + line};
  }
  store::ObjectKey history_key(store::Field unique_id) const {
    return {kHistory, static_cast<std::uint64_t>(unique_id)};
  }
  /// History ids carry the terminal's warehouse in bits [40, 64), so the
  /// placement function routes the blind insert from the id alone.
  static constexpr std::uint64_t kHistoryWarehouseShift = 40;
  static store::Field history_id(store::Field w, std::uint64_t unique) {
    return static_cast<store::Field>(
        (static_cast<std::uint64_t>(w) << kHistoryWarehouseShift) |
        (unique & ((1ULL << kHistoryWarehouseShift) - 1)));
  }

 private:
  TxProfile make_neworder(std::size_t order_lines) const;
  TxProfile make_payment() const;
  TxProfile make_delivery() const;
  TxProfile make_delivery_all() const;
  /// Appends one district's delivery ops (cursor/order/line/customer) to a
  /// program under construction.  `d_of` resolves the district id at run
  /// time; `d_deps` are the vars it consumes (empty for a constant).
  void delivery_ops(ir::ProgramBuilder& b, ir::VarId p_w,
                    std::vector<ir::VarId> d_deps,
                    std::function<store::Field(const ir::TxEnv&)> d_of,
                    ir::VarId p_carrier, const std::string& suffix) const;
  TxProfile make_orderstatus() const;
  TxProfile make_stocklevel() const;

  TpccConfig config_;
  std::uint64_t districts_per_warehouse_;
  std::uint64_t customers_per_district_;
  std::uint64_t n_items_;
  std::uint64_t order_ring_;
  std::vector<TxProfile> profiles_;
};

}  // namespace acn::workloads
