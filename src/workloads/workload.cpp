#include "src/workloads/workload.hpp"

#include <stdexcept>

namespace acn::workloads {

store::VersionedRecord latest_value(const std::vector<dtm::Server*>& servers,
                                    const store::ObjectKey& key) {
  store::VersionedRecord best;
  bool found = false;
  for (const dtm::Server* server : servers) {
    const auto result = server->store().read(key);
    if (result.status != store::ReadStatus::kOk) continue;
    if (!found || result.record.version > best.version) {
      best = result.record;
      found = true;
    }
  }
  if (!found)
    throw std::runtime_error("latest_value: no replica holds " +
                             store::to_string(key));
  return best;
}

void seed_all(const std::vector<dtm::Server*>& servers,
              const store::ObjectKey& key, const store::Record& value) {
  for (dtm::Server* server : servers) server->store().seed(key, value);
}

std::size_t pick_profile(const std::vector<TxProfile>& profiles, Rng& rng) {
  double total = 0.0;
  for (const auto& p : profiles) total += p.weight;
  double roll = rng.uniform01() * total;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    roll -= profiles[i].weight;
    if (roll <= 0.0) return i;
  }
  return profiles.size() - 1;
}

}  // namespace acn::workloads
