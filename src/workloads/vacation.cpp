#include "src/workloads/vacation.hpp"

#include <stdexcept>

namespace acn::workloads {
namespace {

using ir::ProgramBuilder;
using ir::Record;
using ir::TxEnv;
using ir::VarId;
using store::Field;

// Item record fields.
constexpr std::size_t kFree = 0;
constexpr std::size_t kReserved = 1;
constexpr std::size_t kPrice = 2;
// Customer record fields.
constexpr std::size_t kSpent = 0;
constexpr std::size_t kBookings = 1;

Field price_of(ir::ClassId table, Field id) {
  return 50 + static_cast<Field>(table) * 25 + id % 50;
}

}  // namespace

Vacation::Vacation(VacationConfig config) : config_(config) {
  if (config_.n_items == 0 || config_.n_customers == 0)
    throw std::invalid_argument("Vacation: empty tables");
  profiles_.push_back(make_reservation());
  if (config_.cancel_fraction > 0.0) profiles_.push_back(make_cancel());
  profiles_.push_back(make_query());
}

TxProfile Vacation::make_reservation() const {
  // Params: 0=customer, 1=car item, 2=flight item, 3=room item.
  ProgramBuilder b("vacation.make_reservation", 4);
  const VarId p_cust = b.param(0);

  const VarId cust = b.remote_read(
      kCustomer, {p_cust},
      [p_cust](const TxEnv& e) { return customer_key(e.geti(p_cust)); },
      "read customer");

  VarId item_var[3];
  VarId charge_var[3];  // price paid for this table, 0 when unavailable
  const char* labels_read[3] = {"read car", "read flight", "read room"};
  const char* labels_res[3] = {"reserve car", "reserve flight", "reserve room"};
  for (int t = 0; t < 3; ++t) {
    const ir::ClassId table = kTables[t];
    const VarId p_item = b.param(static_cast<std::size_t>(1 + t));
    item_var[t] = b.remote_read(
        table, {p_item},
        [table, p_item](const TxEnv& e) {
          return item_key(table, e.geti(p_item));
        },
        labels_read[t]);
    charge_var[t] = b.fresh_var();
    const VarId iv = item_var[t];
    const VarId cv = charge_var[t];
    b.local({iv}, {iv, cv},
            [iv, cv](TxEnv& e) {
              Record r = e.get(iv);
              if (r[kFree] > 0) {
                r[kFree] -= 1;
                r[kReserved] += 1;
                e.seti(cv, r[kPrice]);
                e.write_object(iv, std::move(r));
              } else {
                e.seti(cv, 0);
              }
            },
            labels_res[t]);
  }

  b.local({cust, charge_var[0], charge_var[1], charge_var[2]}, {cust},
          [=](TxEnv& e) {
            Record r = e.get(cust);
            Field booked = 0;
            for (const VarId cv : charge_var) {
              const Field price = e.geti(cv);
              r[kSpent] += price;
              if (price > 0) booked += 1;
            }
            r[kBookings] += booked;
            e.write_object(cust, std::move(r));
          },
          "charge customer");

  TxProfile profile;
  profile.program = std::make_unique<ir::TxProgram>(b.build());
  profile.static_model =
      build_dependency_model(*profile.program, AttachPolicy::kLatestProducer);
  // Manual QR-CN: one sub-transaction per table access, program order — the
  // natural decomposition for the deployment-time workload (cars hot).
  profile.manual_sequence = initial_sequence(profile.static_model);

  const VacationConfig cfg = config_;
  profile.weight = cfg.write_fraction * (1.0 - cfg.cancel_fraction);
  profile.make_params = [cfg](Rng& rng, int phase) {
    const int hot_table = phase % 3;
    std::vector<Record> params;
    params.push_back(
        Record{static_cast<Field>(rng.uniform(0, cfg.n_customers - 1))});
    const std::size_t hot_items = std::min(cfg.hot_items, cfg.n_items);
    for (int t = 0; t < 3; ++t) {
      Field id;
      if (t == hot_table && rng.bernoulli(cfg.hot_probability))
        id = static_cast<Field>(rng.uniform(0, hot_items - 1));
      else
        id = static_cast<Field>(rng.uniform(0, cfg.n_items - 1));
      params.push_back(Record{id});
    }
    return params;
  };
  return profile;
}

TxProfile Vacation::make_cancel() const {
  // Cancel one reservation: give the seat back to the item, refund the
  // item's price from the customer.  Both sides update together (or the
  // transaction is a no-op), so free+reserved and money conservation hold.
  // Params: 0=customer, 1=table index, 2=item.
  ProgramBuilder b("vacation.cancel", 3);
  const VarId p_cust = b.param(0);
  const VarId p_table = b.param(1);
  const VarId p_item = b.param(2);

  const VarId cust = b.remote_read(
      kCustomer, {p_cust},
      [p_cust](const TxEnv& e) { return customer_key(e.geti(p_cust)); },
      "read customer");
  const VarId item = b.remote_read(
      kCar /* class for analysis; actual table varies */, {p_table, p_item},
      [p_table, p_item](const TxEnv& e) {
        return item_key(static_cast<ir::ClassId>(kTables[e.geti(p_table)]),
                        e.geti(p_item));
      },
      "read item");
  b.local({cust, item}, {cust, item},
          [cust, item](TxEnv& e) {
            Record c = e.get(cust);
            Record r = e.get(item);
            if (c[kBookings] > 0 && r[kReserved] > 0) {
              r[kReserved] -= 1;
              r[kFree] += 1;
              c[kSpent] -= r[kPrice];
              c[kBookings] -= 1;
              e.write_object(item, std::move(r));
              e.write_object(cust, std::move(c));
            }
          },
          "cancel reservation");

  TxProfile profile;
  profile.program = std::make_unique<ir::TxProgram>(b.build());
  profile.static_model =
      build_dependency_model(*profile.program, AttachPolicy::kLatestProducer);
  profile.manual_sequence = initial_sequence(profile.static_model);

  const VacationConfig cfg = config_;
  profile.weight = cfg.write_fraction * cfg.cancel_fraction;
  profile.make_params = [cfg](Rng& rng, int phase) {
    const int hot_table = phase % 3;
    const Field table = static_cast<Field>(rng.uniform(0, 2));
    Field id;
    if (table == hot_table && rng.bernoulli(cfg.hot_probability))
      id = static_cast<Field>(
          rng.uniform(0, std::min(cfg.hot_items, cfg.n_items) - 1));
    else
      id = static_cast<Field>(rng.uniform(0, cfg.n_items - 1));
    return std::vector<Record>{
        Record{static_cast<Field>(rng.uniform(0, cfg.n_customers - 1))},
        Record{table}, Record{id}};
  };
  return profile;
}

TxProfile Vacation::make_query() const {
  // Params: 0=customer, 1=table index, 2=item.
  ProgramBuilder b("vacation.query", 3);
  const VarId p_cust = b.param(0);
  const VarId p_table = b.param(1);
  const VarId p_item = b.param(2);

  const VarId cust = b.remote_read(
      kCustomer, {p_cust},
      [p_cust](const TxEnv& e) { return customer_key(e.geti(p_cust)); },
      "read customer");
  const VarId item = b.remote_read(
      kCar /* class used for analysis; actual table varies */, {p_table, p_item},
      [p_table, p_item](const TxEnv& e) {
        return item_key(static_cast<ir::ClassId>(kTables[e.geti(p_table)]),
                        e.geti(p_item));
      },
      "read item");
  const VarId answer = b.fresh_var();
  b.local({cust, item}, {answer},
          [=](TxEnv& e) {
            e.seti(answer, e.get(item)[kFree] > 0 ? e.get(cust)[kSpent] : -1);
          },
          "evaluate");

  TxProfile profile;
  profile.program = std::make_unique<ir::TxProgram>(b.build());
  profile.static_model =
      build_dependency_model(*profile.program, AttachPolicy::kLatestProducer);
  profile.manual_sequence = initial_sequence(profile.static_model);

  const VacationConfig cfg = config_;
  profile.weight = 1.0 - cfg.write_fraction;
  profile.make_params = [cfg](Rng& rng, int phase) {
    const int hot_table = phase % 3;
    const Field table = static_cast<Field>(rng.uniform(0, 2));
    Field id;
    if (table == hot_table && rng.bernoulli(cfg.hot_probability))
      id = static_cast<Field>(
          rng.uniform(0, std::min(cfg.hot_items, cfg.n_items) - 1));
    else
      id = static_cast<Field>(rng.uniform(0, cfg.n_items - 1));
    return std::vector<Record>{
        Record{static_cast<Field>(rng.uniform(0, cfg.n_customers - 1))},
        Record{table}, Record{id}};
  };
  return profile;
}

void Vacation::seed_objects(const SeedSink& sink) {
  for (const ir::ClassId table : kTables)
    for (std::size_t i = 0; i < config_.n_items; ++i) {
      const auto id = static_cast<Field>(i);
      sink(item_key(table, id),
           Record{config_.capacity, 0, price_of(table, id)});
    }
  for (std::size_t i = 0; i < config_.n_customers; ++i)
    sink(customer_key(static_cast<Field>(i)), Record{0, 0});
}

void Vacation::check_invariants(const std::vector<dtm::Server*>& servers) const {
  store::Field reserved_value = 0;
  for (const ir::ClassId table : kTables)
    for (std::size_t i = 0; i < config_.n_items; ++i) {
      const auto id = static_cast<Field>(i);
      const auto record = latest_value(servers, item_key(table, id)).value;
      if (record[kFree] + record[kReserved] != config_.capacity)
        throw std::runtime_error("vacation: capacity violated on item " +
                                 std::to_string(table) + ":" + std::to_string(i));
      reserved_value += record[kReserved] * record[kPrice];
    }
  store::Field spent = 0;
  for (std::size_t i = 0; i < config_.n_customers; ++i)
    spent += latest_value(servers, customer_key(static_cast<Field>(i))).value[kSpent];
  if (spent != reserved_value)
    throw std::runtime_error("vacation: money conservation violated: spent " +
                             std::to_string(spent) + " != reserved value " +
                             std::to_string(reserved_value));
}

}  // namespace acn::workloads
