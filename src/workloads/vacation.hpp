// Vacation benchmark (STAMP-style travel reservation system).
//
// Schema: three item tables — cars, flights, rooms — of `n_items` objects
// ([free, reserved, price]) plus `n_customers` customers
// ([spent, reservations]).  The makeReservation transaction reads the
// customer, then reserves one item from each table (decrement free,
// increment reserved, when available), and finally charges the customer for
// what it booked.  10% of transactions are read-only itinerary queries.
//
// Phase stimulus (the paper changes the hot objects in the 2nd and 4th
// intervals): in phase p the *hot table* is p % 3 — item picks for that
// table concentrate on a small hot range, the other tables stay uniform.
// QR-ACN should respond by attaching the customer-charge computation to the
// hot table's UnitBlock and shifting that Block next to the commit phase.
//
// Invariants: per item, free + reserved == capacity; globally, the sum
// customers spent equals the sum over items of reserved * price.
#pragma once

#include "src/workloads/workload.hpp"

namespace acn::workloads {

struct VacationConfig {
  std::size_t n_items = 256;      // per table
  std::size_t n_customers = 1024;
  store::Field capacity = 1'000'000;  // per item; never exhausted in-bench
  double write_fraction = 0.9;
  /// Portion of the write fraction spent cancelling instead of reserving
  /// (STAMP's deleteCustomer analogue); 0 disables the profile.
  double cancel_fraction = 0.0;

  std::size_t hot_items = 4;
  double hot_probability = 0.9;
};

class Vacation final : public Workload {
 public:
  static constexpr ir::ClassId kCar = 1;
  static constexpr ir::ClassId kFlight = 2;
  static constexpr ir::ClassId kRoom = 3;
  static constexpr ir::ClassId kCustomer = 4;
  static constexpr ir::ClassId kTables[3] = {kCar, kFlight, kRoom};

  explicit Vacation(VacationConfig config = {});

  std::string name() const override { return "vacation"; }
  void seed_objects(const SeedSink& sink) override;
  const std::vector<TxProfile>& profiles() const override { return profiles_; }
  void check_invariants(const std::vector<dtm::Server*>& servers) const override;

  const VacationConfig& config() const noexcept { return config_; }

  static store::ObjectKey item_key(ir::ClassId table, store::Field id) {
    return {table, static_cast<std::uint64_t>(id)};
  }
  static store::ObjectKey customer_key(store::Field id) {
    return {kCustomer, static_cast<std::uint64_t>(id)};
  }

 private:
  TxProfile make_reservation() const;
  TxProfile make_cancel() const;
  TxProfile make_query() const;

  VacationConfig config_;
  std::vector<TxProfile> profiles_;
};

}  // namespace acn::workloads
