// Bank benchmark — the paper's running example (Figures 1-3).
//
// Schema: `n_branches` Branch objects and `n_accounts` Account objects,
// each a single balance field.  The transfer transaction follows Figure 1's
// flat order exactly: read branch1, read branch2, withdraw/deposit on the
// branches, then read account1, read account2, withdraw/deposit on the
// accounts.  90% of transactions are transfers; 10% are read-only audits.
//
// Phases (contention stimulus):
//   phase 0 — branch selection is concentrated on a small hot set
//             (branches hot, accounts cold: the Figure 1 scenario);
//   phase 1 — branches uniform, account selection concentrated
//             (the hot class flips, which static decompositions cannot
//             follow).
//
// The manual QR-CN decomposition is the Figure 2 configuration: the account
// operations run first as one sub-transaction, the branch operations last
// as another — optimal for phase 0, wrong for phase 1.
//
// Invariant: the sum of all balances (accounts + branches) is constant —
// every transfer moves `amount` between objects in equal and opposite
// pairs.
#pragma once

#include "src/workloads/workload.hpp"

namespace acn::workloads {

struct BankConfig {
  std::size_t n_branches = 64;
  std::size_t n_accounts = 4096;
  store::Field initial_balance = 10'000;
  double write_fraction = 0.9;

  std::size_t hot_branches = 4;  // phase-0 hot set
  std::size_t hot_accounts = 4;  // phase-1 hot set
  double hot_probability = 0.8;  // chance a pick lands in the hot set
};

class Bank final : public Workload {
 public:
  static constexpr ir::ClassId kBranch = 1;
  static constexpr ir::ClassId kAccount = 2;

  explicit Bank(BankConfig config = {});

  std::string name() const override { return "bank"; }
  void seed_objects(const SeedSink& sink) override;
  /// Branch-per-group placement: branch b and every account with
  /// id ≡ b (mod groups) co-locate, so a transfer inside one "branch
  /// neighborhood" stays single-shard and cross-neighborhood transfers
  /// exercise 2PC.
  Placement placement() const override;
  const std::vector<TxProfile>& profiles() const override { return profiles_; }
  void check_invariants(const std::vector<dtm::Server*>& servers) const override;

  const BankConfig& config() const noexcept { return config_; }

  static store::ObjectKey branch_key(store::Field id) {
    return {kBranch, static_cast<std::uint64_t>(id)};
  }
  static store::ObjectKey account_key(store::Field id) {
    return {kAccount, static_cast<std::uint64_t>(id)};
  }

 private:
  TxProfile make_transfer() const;
  TxProfile make_audit() const;

  BankConfig config_;
  std::vector<TxProfile> profiles_;
};

}  // namespace acn::workloads
