#include "src/workloads/bank.hpp"

#include <stdexcept>

namespace acn::workloads {
namespace {

using ir::ProgramBuilder;
using ir::Record;
using ir::TxEnv;
using ir::VarId;
using store::Field;

/// Units whose first access is of class `cls`, in model order.
std::vector<std::size_t> units_of_class(const DependencyModel& model,
                                        ir::ClassId cls) {
  std::vector<std::size_t> out;
  for (std::size_t u = 0; u < model.units.size(); ++u)
    if (!model.units[u].classes.empty() && model.units[u].classes.front() == cls)
      out.push_back(u);
  return out;
}

Field pick_hot_or_uniform(Rng& rng, std::size_t n, std::size_t hot,
                          double p_hot) {
  hot = std::min(hot, n);
  if (hot > 0 && rng.bernoulli(p_hot))
    return static_cast<Field>(rng.uniform(0, hot - 1));
  return static_cast<Field>(rng.uniform(0, n - 1));
}

std::pair<Field, Field> pick_two_distinct(Rng& rng, std::size_t n,
                                          std::size_t hot, double p_hot) {
  const Field a = pick_hot_or_uniform(rng, n, hot, p_hot);
  Field b = a;
  for (int guard = 0; b == a && guard < 64; ++guard)
    b = pick_hot_or_uniform(rng, n, hot, p_hot);
  if (b == a) b = static_cast<Field>((a + 1) % static_cast<Field>(n));
  return {a, b};
}

}  // namespace

Bank::Bank(BankConfig config) : config_(config) {
  if (config_.n_branches < 2 || config_.n_accounts < 2)
    throw std::invalid_argument("Bank: need at least 2 branches and accounts");
  profiles_.push_back(make_transfer());
  profiles_.push_back(make_audit());
}

TxProfile Bank::make_transfer() const {
  // Params: 0=account1, 1=account2, 2=branch1, 3=branch2, 4=amount.
  ProgramBuilder b("bank.transfer", 5);
  const VarId p_acc1 = b.param(0), p_acc2 = b.param(1);
  const VarId p_br1 = b.param(2), p_br2 = b.param(3);
  const VarId p_amt = b.param(4);

  // Figure 1 order: branches first, then accounts.
  const VarId br1 = b.remote_read(
      kBranch, {p_br1},
      [p_br1](const TxEnv& e) { return branch_key(e.geti(p_br1)); },
      "read branch1");
  const VarId br2 = b.remote_read(
      kBranch, {p_br2},
      [p_br2](const TxEnv& e) { return branch_key(e.geti(p_br2)); },
      "read branch2");
  b.local({br1, p_amt}, {br1},
          [br1, p_amt](TxEnv& e) {
            Record r = e.get(br1);
            r[0] -= e.geti(p_amt);
            e.write_object(br1, std::move(r));
          },
          "branch1.withdraw");
  b.local({br2, p_amt}, {br2},
          [br2, p_amt](TxEnv& e) {
            Record r = e.get(br2);
            r[0] += e.geti(p_amt);
            e.write_object(br2, std::move(r));
          },
          "branch2.deposit");
  const VarId acc1 = b.remote_read(
      kAccount, {p_acc1},
      [p_acc1](const TxEnv& e) { return account_key(e.geti(p_acc1)); },
      "read account1");
  const VarId acc2 = b.remote_read(
      kAccount, {p_acc2},
      [p_acc2](const TxEnv& e) { return account_key(e.geti(p_acc2)); },
      "read account2");
  b.local({acc1, p_amt}, {acc1},
          [acc1, p_amt](TxEnv& e) {
            Record r = e.get(acc1);
            r[0] -= e.geti(p_amt);
            e.write_object(acc1, std::move(r));
          },
          "account1.withdraw");
  b.local({acc2, p_amt}, {acc2},
          [acc2, p_amt](TxEnv& e) {
            Record r = e.get(acc2);
            r[0] += e.geti(p_amt);
            e.write_object(acc2, std::move(r));
          },
          "account2.deposit");

  TxProfile profile;
  profile.program = std::make_unique<ir::TxProgram>(b.build());
  profile.static_model =
      build_dependency_model(*profile.program, AttachPolicy::kLatestProducer);

  // Manual QR-CN decomposition (Figure 2): accounts first in one
  // sub-transaction, branches last in another.
  const auto account_units = units_of_class(profile.static_model, kAccount);
  const auto branch_units = units_of_class(profile.static_model, kBranch);
  profile.manual_sequence = {Block{account_units}, Block{branch_units}};
  if (!sequence_valid(profile.manual_sequence, profile.static_model))
    throw std::logic_error("bank.transfer: manual sequence invalid");

  const BankConfig cfg = config_;
  profile.weight = cfg.write_fraction;
  profile.make_params = [cfg](Rng& rng, int phase) {
    const bool branches_hot = phase % 2 == 0;
    const auto [a1, a2] = pick_two_distinct(
        rng, cfg.n_accounts, branches_hot ? 0 : cfg.hot_accounts,
        cfg.hot_probability);
    const auto [b1, b2] = pick_two_distinct(
        rng, cfg.n_branches, branches_hot ? cfg.hot_branches : 0,
        cfg.hot_probability);
    const Field amount = static_cast<Field>(rng.uniform(1, 100));
    return std::vector<Record>{Record{a1}, Record{a2}, Record{b1}, Record{b2},
                               Record{amount}};
  };
  return profile;
}

TxProfile Bank::make_audit() const {
  // Params: 0=account1, 1=account2, 2=branch1, 3=branch2.
  ProgramBuilder b("bank.audit", 4);
  const VarId p_acc1 = b.param(0), p_acc2 = b.param(1);
  const VarId p_br1 = b.param(2), p_br2 = b.param(3);

  const VarId acc1 = b.remote_read(
      kAccount, {p_acc1},
      [p_acc1](const TxEnv& e) { return account_key(e.geti(p_acc1)); },
      "read account1");
  const VarId acc2 = b.remote_read(
      kAccount, {p_acc2},
      [p_acc2](const TxEnv& e) { return account_key(e.geti(p_acc2)); },
      "read account2");
  const VarId br1 = b.remote_read(
      kBranch, {p_br1},
      [p_br1](const TxEnv& e) { return branch_key(e.geti(p_br1)); },
      "read branch1");
  const VarId br2 = b.remote_read(
      kBranch, {p_br2},
      [p_br2](const TxEnv& e) { return branch_key(e.geti(p_br2)); },
      "read branch2");
  const VarId total = b.fresh_var();
  b.local({acc1, acc2, br1, br2}, {total},
          [=](TxEnv& e) {
            e.seti(total, e.geti(acc1) + e.geti(acc2) + e.geti(br1) +
                              e.geti(br2));
          },
          "sum balances");

  TxProfile profile;
  profile.program = std::make_unique<ir::TxProgram>(b.build());
  profile.static_model =
      build_dependency_model(*profile.program, AttachPolicy::kLatestProducer);
  profile.manual_sequence = initial_sequence(profile.static_model);

  const BankConfig cfg = config_;
  profile.weight = 1.0 - cfg.write_fraction;
  profile.make_params = [cfg](Rng& rng, int phase) {
    const bool branches_hot = phase % 2 == 0;
    const auto [a1, a2] = pick_two_distinct(
        rng, cfg.n_accounts, branches_hot ? 0 : cfg.hot_accounts,
        cfg.hot_probability);
    const auto [b1, b2] = pick_two_distinct(
        rng, cfg.n_branches, branches_hot ? cfg.hot_branches : 0,
        cfg.hot_probability);
    return std::vector<Record>{Record{a1}, Record{a2}, Record{b1}, Record{b2}};
  };
  return profile;
}

void Bank::seed_objects(const SeedSink& sink) {
  for (std::size_t i = 0; i < config_.n_branches; ++i)
    sink(branch_key(static_cast<Field>(i)), Record{config_.initial_balance});
  for (std::size_t i = 0; i < config_.n_accounts; ++i)
    sink(account_key(static_cast<Field>(i)), Record{config_.initial_balance});
}

Placement Bank::placement() const {
  Placement placement;
  // Both classes stripe by raw id: branch b is the natural placement id of
  // its group, and accounts spread round-robin so every group carries an
  // equal slice.  The shard map reduces modulo the group count.
  placement.shard_of = [](const store::ObjectKey& key) {
    return static_cast<std::uint32_t>(key.id);
  };
  return placement;
}

void Bank::check_invariants(const std::vector<dtm::Server*>& servers) const {
  const store::Field expected =
      config_.initial_balance *
      static_cast<store::Field>(config_.n_branches + config_.n_accounts);
  store::Field total = 0;
  for (std::size_t i = 0; i < config_.n_branches; ++i)
    total += latest_value(servers, branch_key(static_cast<Field>(i))).value[0];
  for (std::size_t i = 0; i < config_.n_accounts; ++i)
    total += latest_value(servers, account_key(static_cast<Field>(i))).value[0];
  if (total != expected)
    throw std::runtime_error("bank invariant violated: total " +
                             std::to_string(total) + " != expected " +
                             std::to_string(expected));
}

}  // namespace acn::workloads
