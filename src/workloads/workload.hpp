// Benchmark workload interface.
//
// A workload supplies, for each of its transaction types, a TxProfile:
//   * the TxProgram (the flat transaction as the programmer wrote it);
//   * the manual closed-nesting decomposition used by the QR-CN baseline —
//     a fixed Block Sequence over the program's static dependency model,
//     chosen the way a careful programmer would for the *default* workload
//     (QR-ACN must beat it by adapting when the workload shifts);
//   * a parameter generator, which consults the current phase so the
//     harness can change which objects are hot mid-run (the stimulus of the
//     paper's Vacation and Bank experiments).
// Workloads also seed every replica and can check global invariants after a
// run by reading the latest committed version of each object across all
// replicas (full replication: the max-version copy is the committed one).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/acn/blocks.hpp"
#include "src/acn/txir.hpp"
#include "src/dtm/server.hpp"

namespace acn::workloads {

struct TxProfile {
  std::unique_ptr<ir::TxProgram> program;  // stable address: models point here
  DependencyModel static_model;            // latest-producer partition
  BlockSequence manual_sequence;           // the QR-CN baseline decomposition
  double weight = 1.0;
  std::function<std::vector<ir::Record>(Rng&, int phase)> make_params;
};

/// Where seed_objects pours the initial objects.  The unsharded path binds
/// seed_all (every replica); the sharded path (shard::ClientFleet::seed)
/// binds owner-scoped seeding, so each object lands only on the replicas of
/// the quorum group that owns it.
using SeedSink =
    std::function<void(const store::ObjectKey&, const store::Record&)>;

/// How a workload wants its keyspace placed on a sharded cluster.
struct Placement {
  /// Key → natural placement id (TPC-C warehouse, Bank branch); the shard
  /// map reduces it modulo the group count, so the workload never needs to
  /// know how many groups exist.  Null = salted-hash partitioning.
  std::function<std::uint32_t(const store::ObjectKey&)> shard_of;
  /// Read-mostly reference classes replicated on every group (reads served
  /// by the transaction's home group, writes refused).
  std::vector<store::ClassId> replicated_classes;
};

/// Seed `key` = `value` on every replica.
void seed_all(const std::vector<dtm::Server*>& servers,
              const store::ObjectKey& key, const store::Record& value);

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Emit every initial object into `sink`, exactly once per key.
  virtual void seed_objects(const SeedSink& sink) = 0;

  /// Install the initial objects on every server replica (the unsharded
  /// path — full replication).
  void seed(const std::vector<dtm::Server*>& servers) {
    seed_objects([&](const store::ObjectKey& key, const store::Record& value) {
      seed_all(servers, key, value);
    });
  }

  /// Keyspace placement for sharded runs.  The default (empty) leaves the
  /// bench on hash partitioning with nothing replicated.
  virtual Placement placement() const { return {}; }

  virtual const std::vector<TxProfile>& profiles() const = 0;

  /// Validate global invariants over the committed state; throws
  /// std::runtime_error with a description on violation.
  virtual void check_invariants(const std::vector<dtm::Server*>& servers) const {
    (void)servers;
  }
};

/// Latest committed value of `key`: max-version copy across all replicas.
/// Throws std::runtime_error when no replica holds the object.
store::VersionedRecord latest_value(const std::vector<dtm::Server*>& servers,
                                    const store::ObjectKey& key);

/// Seed `key` = `value` on every replica.
void seed_all(const std::vector<dtm::Server*>& servers,
              const store::ObjectKey& key, const store::Record& value);

/// Pick a profile index by weight.
std::size_t pick_profile(const std::vector<TxProfile>& profiles, Rng& rng);

}  // namespace acn::workloads
