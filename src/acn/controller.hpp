// Adaptive controller: owns the published Plan for one transaction program
// and refreshes it from the Dynamic Module on a period (the paper runs this
// every 10 seconds; the harness ticks it once per measurement interval).
//
// Readers (client threads about to execute a transaction) grab the current
// plan as an immutable shared_ptr; adapt() swaps atomically, so in-flight
// transactions finish under the plan they started with and the next attempt
// picks up the new composition.
#pragma once

#include <memory>
#include <mutex>

#include "src/acn/algorithm_module.hpp"
#include "src/acn/monitor.hpp"

namespace acn {

class AdaptiveController {
 public:
  AdaptiveController(const ir::TxProgram& program, AlgorithmConfig config,
                     std::shared_ptr<const ContentionModel> model);

  /// Current published plan (never null).
  std::shared_ptr<const Plan> plan() const;

  /// Recompute from the given windowed write counts and publish.
  void adapt(const RawLevels& raw);

  /// Convenience: refresh `monitor` through `stub`, then adapt.
  void adapt_from(ContentionMonitor& monitor, dtm::QuorumStub& stub);

  /// Object classes this program touches (what the monitor should track).
  std::vector<ir::ClassId> touched_classes() const;

  const AlgorithmModule& algorithm() const noexcept { return algorithm_; }

  /// Algorithm Module invocations (every periodic tick).
  std::uint64_t adaptations() const noexcept { return adaptations_; }
  /// Ticks whose recomputed composition actually differed and was
  /// published (the workload genuinely shifted).
  std::uint64_t recompositions() const noexcept { return recompositions_; }

  /// When set, every adapt() tick bumps acn.adaptations and each published
  /// re-plan emits an "acn.replan" trace event with the old -> new block
  /// counts plus the acn.recompositions counter.
  void set_obs(obs::Observability* obs) noexcept { obs_ = obs; }

 private:
  AlgorithmModule algorithm_;
  mutable std::mutex mutex_;
  std::shared_ptr<const Plan> plan_;
  std::uint64_t adaptations_ = 0;
  std::uint64_t recompositions_ = 0;
  obs::Observability* obs_ = nullptr;
};

/// Structural equality of two plans' executable layout: same blocks, in the
/// same order, running the same program ops.  (Unit numbering may differ
/// between recomputations; op indices are the stable identity.)
bool same_composition(const Plan& a, const Plan& b);

}  // namespace acn
