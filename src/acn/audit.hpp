// Program auditor: runtime verification of declared dependencies.
//
// The Static Module's entire analysis — UnitBlock attachment, dependency
// edges, the freedom to merge and reorder Blocks — is only as sound as the
// reads/writes each operation *declares*.  An op whose lambda touches an
// undeclared variable can silently break reordering correctness: the
// Algorithm Module may schedule its producer after it.
//
// audit_program() executes a program once in source order against a
// transactional context, with an AccessObserver installed on the TxEnv,
// and reports every access outside the op's declaration:
//   * a local op get() of a var it did not declare in `reads`
//     (undeclared *param* reads are tolerated — params are bound before
//     any op runs, so they impose no ordering constraint);
//   * a local op set()/write_object() of a var not in `writes`;
//   * a remote op's key_fn reading a var outside its `key_deps`.
// The run never commits: all effects stay in the transaction's private
// buffers.
#pragma once

#include <string>
#include <vector>

#include "src/acn/txir.hpp"

namespace acn {

struct AuditViolation {
  std::size_t op_index = 0;
  std::string op_label;
  ir::VarId var = ir::kNoVar;
  enum class Kind { kUndeclaredRead, kUndeclaredWrite } kind =
      Kind::kUndeclaredRead;

  std::string describe() const;
};

/// Executes `program` once (without committing) and returns every
/// declaration violation observed.  `stub` must point at a cluster seeded
/// with whatever objects the given params make the program touch.
std::vector<AuditViolation> audit_program(const ir::TxProgram& program,
                                          const std::vector<ir::Record>& params,
                                          dtm::QuorumStub& stub);

/// Convenience assertion: audit and throw std::logic_error listing every
/// violation if any were found.
void expect_clean_audit(const ir::TxProgram& program,
                        const std::vector<ir::Record>& params,
                        dtm::QuorumStub& stub);

}  // namespace acn
