#include "src/acn/executor.hpp"

#include <thread>

#include "src/common/clock.hpp"

namespace acn {
namespace {

int abort_reason_index(dtm::AbortKind kind) noexcept {
  switch (kind) {
    case dtm::AbortKind::kValidation:
      return obs::kReasonValidation;
    case dtm::AbortKind::kBusy:
      return obs::kReasonBusy;
    case dtm::AbortKind::kUnavailable:
      return obs::kReasonUnavailable;
  }
  return obs::kReasonValidation;
}

/// Full-abort bookkeeping shared by every execution mode.
void note_full_abort(obs::Observability* obs, const dtm::TxAbort& abort,
                     std::uint64_t tx) {
  if (!obs) return;
  const int reason = abort_reason_index(abort.kind());
  obs->tx_aborts_full.add();
  obs->aborts_full_reason[reason].add();
  obs->tracer.instant("abort.full", "abort", tx, nullptr, 0, nullptr, 0,
                      "reason", obs::abort_reason_name(reason));
}

}  // namespace

Executor::Executor(dtm::QuorumStub& stub, ExecutorConfig config,
                   std::uint64_t seed)
    : stub_(stub), config_(config), rng_(seed) {}

void Executor::execute_op(const ir::TxProgram& program, std::size_t op_index,
                          ir::TxEnv& env, ExecStats& stats) {
  ++stats.ops_executed;
  const ir::Op& op = program.ops[op_index];
  if (op.is_remote())
    env.run_remote(op.remote);
  else
    op.local.fn(env);
}

void Executor::arm_env(ir::TxEnv& env) {
  if (config_.history) env.txn().set_history(config_.history);
  if (config_.obs) env.txn().set_obs(config_.obs);
  if (ContentionMonitor* monitor = config_.piggyback_monitor) {
    env.set_contention_piggyback(
        monitor->classes(),
        [monitor](const std::vector<ir::ClassId>& classes,
                  const std::vector<std::uint64_t>& levels) {
          monitor->observe(classes, levels);
        });
  }
}

void Executor::backoff(int attempt) {
  const auto base = config_.backoff_base.count();
  const std::int64_t shifted = base << std::min(attempt, 6);
  const std::int64_t jitter =
      static_cast<std::int64_t>(rng_.uniform(0, static_cast<std::uint64_t>(shifted)));
  std::this_thread::sleep_for(std::chrono::nanoseconds{shifted + jitter});
}

void Executor::run_flat(const ir::TxProgram& program,
                        const std::vector<ir::Record>& params,
                        ExecStats& stats) {
  obs::Observability* const o = config_.obs;
  const Stopwatch tx_watch;
  for (int attempt = 0;; ++attempt) {
    nesting::Transaction txn(stub_, nesting::next_tx_id());
    ir::TxEnv env(txn, program, params);
    arm_env(env);
    obs::Tracer::Span tx_span;
    if (o)
      tx_span.restart(&o->tracer, "tx", "tx", txn.id(), "attempt", attempt);
    try {
      for (std::size_t i = 0; i < program.ops.size(); ++i)
        execute_op(program, i, env, stats);
      try {
        txn.commit();
      } catch (const dtm::TxAbort&) {
        ++stats.aborts_at_commit;
        throw;
      }
      ++stats.commits;
      if (o) {
        o->tx_commits.add();
        o->tx_latency_ns.observe(tx_watch.elapsed_ns());
      }
      return;
    } catch (const dtm::TxAbort& abort) {
      ++stats.full_aborts;
      if (abort.kind() == dtm::AbortKind::kBusy) ++stats.aborts_busy;
      note_full_abort(o, abort, txn.id());
      if (attempt >= config_.max_full_retries) throw;
      backoff(attempt);
    }
  }
}

void Executor::run_blocks(const ir::TxProgram& program,
                          const DependencyModel& model,
                          const BlockSequence& sequence,
                          const std::vector<ir::Record>& params,
                          ExecStats& stats) {
  obs::Observability* const o = config_.obs;
  const Stopwatch tx_watch;
  for (int attempt = 0;; ++attempt) {
    nesting::Transaction txn(stub_, nesting::next_tx_id());
    ir::TxEnv env(txn, program, params);
    arm_env(env);
    obs::Tracer::Span tx_span;
    if (o)
      tx_span.restart(&o->tracer, "tx", "tx", txn.id(), "attempt", attempt);
    try {
      for (std::size_t position = 0; position < sequence.size(); ++position) {
        const Block& block = sequence[position];
        const std::size_t slot =
            std::min(position, ExecStats::kPositionSlots - 1);
        const auto ops = block_ops(block, model);
        ir::TxEnv::Snapshot snapshot = env.snapshot();
        int partial_attempts = 0;
        for (;;) {
          ++stats.blocks_executed;
          obs::Tracer::Span block_span;
          obs::ScopedLatency block_latency;
          if (o) {
            o->blocks_executed.add();
            block_span.restart(&o->tracer, "block", "block", txn.id(),
                               "position",
                               static_cast<std::int64_t>(position));
            block_latency.arm(o->block_latency_ns);
          }
          txn.begin_nested();
          try {
            for (std::size_t op : ops) execute_op(program, op, env, stats);
            txn.commit_nested();
            break;
          } catch (const dtm::TxAbort& abort) {
            ++stats.aborts_in_execution;
            const bool partial =
                txn.classify(abort) == nesting::AbortScope::kPartial &&
                partial_attempts < config_.max_partial_retries;
            txn.abort_nested();
            if (!partial) {
              ++stats.fulls_at_position[slot];
              throw;  // escalate to a full restart
            }
            ++stats.partial_aborts;
            ++stats.partials_at_position[slot];
            ++partial_attempts;
            if (o) {
              const int reason = abort_reason_index(abort.kind());
              o->tx_aborts_partial.add();
              o->aborts_partial_reason[reason].add();
              o->tracer.instant("abort.partial", "abort", txn.id(), "position",
                                static_cast<std::int64_t>(position), nullptr,
                                0, "reason", obs::abort_reason_name(reason));
            }
            env.restore(snapshot);
            if (abort.kind() == dtm::AbortKind::kBusy)
              backoff(partial_attempts);
          }
        }
      }
      try {
        txn.commit();
      } catch (const dtm::TxAbort&) {
        ++stats.aborts_at_commit;
        throw;
      }
      ++stats.commits;
      if (o) {
        o->tx_commits.add();
        o->tx_latency_ns.observe(tx_watch.elapsed_ns());
      }
      return;
    } catch (const dtm::TxAbort& abort) {
      ++stats.full_aborts;
      if (abort.kind() == dtm::AbortKind::kBusy) ++stats.aborts_busy;
      note_full_abort(o, abort, txn.id());
      if (attempt >= config_.max_full_retries) throw;
      backoff(attempt);
    }
  }
}

void Executor::run_checkpointed(const ir::TxProgram& program,
                                const std::vector<ir::Record>& params,
                                ExecStats& stats) {
  struct Checkpoint {
    std::size_t op_index;
    ir::TxEnv::Snapshot env;
    nesting::Transaction::Checkpoint txn;
  };

  obs::Observability* const o = config_.obs;
  const Stopwatch tx_watch;
  for (int attempt = 0;; ++attempt) {
    nesting::Transaction txn(stub_, nesting::next_tx_id());
    ir::TxEnv env(txn, program, params);
    arm_env(env);
    obs::Tracer::Span tx_span;
    if (o)
      tx_span.restart(&o->tracer, "tx", "tx", txn.id(), "attempt", attempt);
    std::vector<Checkpoint> checkpoints;
    std::unordered_map<ir::ObjectKey, std::size_t, store::ObjectKeyHash>
        first_read_at;
    int restores = 0;
    std::size_t resume_op = 0;

    // Roll back to the checkpoint preceding the first read of any
    // invalidated object.  Objects never seen (e.g. the busy target of the
    // read in flight) roll back to the latest checkpoint.  Returns false
    // when a full restart is required.
    auto try_restore = [&](const dtm::TxAbort& abort) {
      if (checkpoints.empty() || restores >= config_.max_partial_retries)
        return false;
      std::size_t target = checkpoints.size() - 1;
      for (const auto& key : abort.invalid()) {
        const auto it = first_read_at.find(key);
        if (it != first_read_at.end()) target = std::min(target, it->second);
      }
      Checkpoint& point = checkpoints[target];
      env.restore(std::move(point.env));
      txn.restore(std::move(point.txn));
      resume_op = point.op_index;
      checkpoints.resize(target);  // re-pushed when resume_op re-executes
      std::erase_if(first_read_at,
                    [&](const auto& entry) { return entry.second >= target; });
      ++stats.checkpoint_restores;
      ++restores;
      if (o)
        o->tracer.instant("checkpoint.restore", "abort", txn.id(), "resume_op",
                          static_cast<std::int64_t>(resume_op));
      if (abort.kind() == dtm::AbortKind::kBusy) backoff(restores);
      return true;
    };

    try {
      std::size_t op = 0;
      for (;;) {
        try {
          if (op < program.ops.size()) {
            const ir::Op& current = program.ops[op];
            if (current.is_remote()) {
              checkpoints.push_back({op, env.snapshot(), txn.checkpoint()});
              ++stats.checkpoints_taken;
            }
            execute_op(program, op, env, stats);
            if (current.is_remote())
              first_read_at.emplace(env.key_of(current.remote.out),
                                    checkpoints.size() - 1);
            ++op;
          } else {
            txn.commit();
            break;
          }
        } catch (const dtm::TxAbort& abort) {
          if (op < program.ops.size())
            ++stats.aborts_in_execution;
          else
            ++stats.aborts_at_commit;
          if (!try_restore(abort)) throw;
          op = resume_op;
        }
      }
      ++stats.commits;
      if (o) {
        o->tx_commits.add();
        o->tx_latency_ns.observe(tx_watch.elapsed_ns());
      }
      return;
    } catch (const dtm::TxAbort& abort) {
      ++stats.full_aborts;
      if (abort.kind() == dtm::AbortKind::kBusy) ++stats.aborts_busy;
      note_full_abort(o, abort, txn.id());
      if (attempt >= config_.max_full_retries) throw;
      backoff(attempt);
    }
  }
}

void Executor::run_adaptive(AdaptiveController& controller,
                            const std::vector<ir::Record>& params,
                            ExecStats& stats) {
  const auto plan = controller.plan();
  run_blocks(controller.algorithm().program(), plan->model, plan->sequence,
             params, stats);
}

}  // namespace acn
