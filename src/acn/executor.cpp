#include "src/acn/executor.hpp"

#include <stdexcept>
#include <thread>

#include "src/common/clock.hpp"

namespace acn {
namespace {

int abort_reason_index(dtm::AbortKind kind) noexcept {
  switch (kind) {
    case dtm::AbortKind::kValidation:
      return obs::kReasonValidation;
    case dtm::AbortKind::kBusy:
      return obs::kReasonBusy;
    case dtm::AbortKind::kUnavailable:
      return obs::kReasonUnavailable;
  }
  return obs::kReasonValidation;
}

void require(bool present, const char* what) {
  if (!present)
    throw std::invalid_argument(std::string("Executor::run: missing ") + what);
}

}  // namespace

const char* protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kFlat:
      return "QR-DTM";
    case Protocol::kManualCN:
      return "QR-CN";
    case Protocol::kAcn:
      return "QR-ACN";
    case Protocol::kCheckpoint:
      return "QR-CKPT";
  }
  return "?";
}

Executor::Executor(dtm::QuorumStub& stub, ExecutorConfig config,
                   std::uint64_t seed)
    : stub_(stub), config_(config), rng_(seed) {}

/// Full-abort bookkeeping shared by every execution mode.
void Executor::note_full_abort(const dtm::TxAbort& abort, std::uint64_t tx) {
  if (gate_) gate_->on_full_abort(outcome_of(abort), abort.invalid());
  if (obs::Observability* obs = config_.obs) {
    const int reason = abort_reason_index(abort.kind());
    obs->tx_aborts_full.add();
    obs->aborts_full_reason[reason].add();
    obs->tracer.instant("abort.full", "abort", tx, nullptr, 0, nullptr, 0,
                        "reason", obs::abort_reason_name(reason));
  }
}

void Executor::run(Protocol protocol, const RunOptions& options,
                   const std::vector<ir::Record>& params, ExecStats& stats) {
  // Scoped config override; restored even when the run throws.
  struct Restore {
    ExecutorConfig* slot;
    ExecutorConfig saved;
    bool armed;
    ~Restore() {
      if (armed) *slot = std::move(saved);
    }
  } restore{&config_, config_, options.config_override != nullptr};
  if (options.config_override) config_ = *options.config_override;

  // Arm the scheduler gate for this run: declare the predicted footprint
  // and block until admitted, and guarantee finish() on every exit path
  // (the guard's default outcome covers non-TxAbort exceptions too).
  struct GateGuard {
    Executor* executor;
    SchedulerGate* gate;
    TxOutcome outcome = TxOutcome::kUnavailable;
    ~GateGuard() {
      if (gate) gate->finish(outcome);
      executor->gate_ = nullptr;
    }
  } guard{this, options.scheduler};
  gate_ = options.scheduler;
  if (gate_) {
    const ir::TxProgram* program = options.program;
    if (protocol == Protocol::kAcn && options.controller != nullptr)
      program = &options.controller->algorithm().program();
    gate_->admit(program != nullptr ? predicted_footprint(*program, params)
                                    : KeyFootprint{});
  }

  try {
    switch (protocol) {
      case Protocol::kFlat:
        require(options.program != nullptr, "program (kFlat)");
        run_flat_impl(*options.program, params, stats);
        break;
      case Protocol::kManualCN:
        require(options.program != nullptr, "program (kManualCN)");
        require(options.model != nullptr, "model (kManualCN)");
        require(options.sequence != nullptr, "sequence (kManualCN)");
        run_blocks_impl(*options.program, *options.model, *options.sequence,
                        options, params, stats);
        break;
      case Protocol::kAcn: {
        require(options.controller != nullptr, "controller (kAcn)");
        const auto plan = options.controller->plan();
        run_blocks_impl(options.controller->algorithm().program(), plan->model,
                        plan->sequence, options, params, stats);
        break;
      }
      case Protocol::kCheckpoint:
        require(options.program != nullptr, "program (kCheckpoint)");
        run_checkpointed_impl(*options.program, params, stats);
        break;
      default:
        throw std::invalid_argument("Executor::run: unknown protocol");
    }
  } catch (const dtm::TxAbort& abort) {
    guard.outcome = outcome_of(abort);
    throw;
  }
  guard.outcome = TxOutcome::kCommitted;
}

void Executor::execute_op(const ir::TxProgram& program, std::size_t op_index,
                          ir::TxEnv& env, ExecStats& stats) {
  ++stats.ops_executed;
  const ir::Op& op = program.ops[op_index];
  if (op.is_remote())
    env.run_remote(op.remote);
  else
    op.local.fn(env);
}

void Executor::arm_env(ir::TxEnv& env) {
  if (config_.history) env.txn().set_history(config_.history);
  if (config_.obs) env.txn().set_obs(config_.obs);
  if (ContentionMonitor* monitor = config_.piggyback_monitor) {
    env.set_contention_piggyback(
        monitor->classes(),
        [monitor](const std::vector<ir::ClassId>& classes,
                  const std::vector<std::uint64_t>& levels) {
          monitor->observe(classes, levels);
        });
  }
}

void Executor::backoff(int attempt) {
  const auto base = config_.backoff_base.count();
  const std::int64_t shifted = base << std::min(attempt, 6);
  const std::int64_t jitter =
      static_cast<std::int64_t>(rng_.uniform(0, static_cast<std::uint64_t>(shifted)));
  std::this_thread::sleep_for(std::chrono::nanoseconds{shifted + jitter});
}

void Executor::batched_fetch(const ir::TxProgram& program, ir::TxEnv& env,
                             const std::vector<std::size_t>& group,
                             const std::vector<std::size_t>& speculative,
                             SpecBuffer& spec_buffer) {
  obs::Observability* const o = config_.obs;

  // Adopt what the previous Block prefetched for us into the fresh frame
  // (so staleness aborts partially, against this Block).  read_many below
  // then skips the adopted keys as already buffered.
  if (!spec_buffer.empty()) {
    std::size_t hits = 0;
    for (const auto& [key, record] : spec_buffer)
      if (env.txn().adopt_read(key, record)) ++hits;
    if (o && hits > 0) o->prefetch_hits.add(hits);
    spec_buffer.clear();
  }

  if (group.empty() && speculative.empty()) return;
  // Key functions of batchable ops depend only on state computed before
  // this Block, so both key lists are evaluable right now.
  std::vector<ir::ObjectKey> keys;
  keys.reserve(group.size());
  for (std::size_t idx : group)
    keys.push_back(program.ops[idx].remote.key_fn(env));
  std::vector<ir::ObjectKey> spec_keys;
  spec_keys.reserve(speculative.size());
  for (std::size_t idx : speculative)
    spec_keys.push_back(program.ops[idx].remote.key_fn(env));

  if (ContentionMonitor* monitor = config_.piggyback_monitor) {
    std::vector<std::uint64_t> levels;
    spec_buffer =
        env.txn().read_many(keys, spec_keys, monitor->classes(), &levels);
    if (!levels.empty()) monitor->observe(monitor->classes(), levels);
  } else {
    spec_buffer = env.txn().read_many(keys, spec_keys);
  }
}

void Executor::run_flat_impl(const ir::TxProgram& program,
                             const std::vector<ir::Record>& params,
                             ExecStats& stats) {
  obs::Observability* const o = config_.obs;
  const Stopwatch tx_watch;
  for (int attempt = 0;; ++attempt) {
    nesting::Transaction txn(stub_, nesting::next_tx_id());
    ir::TxEnv env(txn, program, params);
    arm_env(env);
    obs::Tracer::Span tx_span;
    if (o)
      tx_span.restart(&o->tracer, "tx", "tx", txn.id(), "attempt", attempt);
    try {
      for (std::size_t i = 0; i < program.ops.size(); ++i)
        execute_op(program, i, env, stats);
      try {
        txn.commit();
      } catch (const dtm::TxAbort&) {
        ++stats.aborts_at_commit;
        throw;
      }
      ++stats.commits;
      if (o) {
        o->tx_commits.add();
        o->tx_latency_ns.observe(tx_watch.elapsed_ns());
      }
      return;
    } catch (const dtm::TxAbort& abort) {
      ++stats.full_aborts;
      if (abort.kind() == dtm::AbortKind::kBusy) ++stats.aborts_busy;
      note_full_abort(abort, txn.id());
      if (attempt >= config_.max_full_retries) throw;
      backoff(attempt);
    }
  }
}

void Executor::run_blocks_impl(const ir::TxProgram& program,
                               const DependencyModel& model,
                               const BlockSequence& sequence,
                               const RunOptions& options,
                               const std::vector<ir::Record>& params,
                               ExecStats& stats) {
  obs::Observability* const o = config_.obs;

  // Fetch plans depend only on the program and the sequence, not on runtime
  // state: compute them once per run.  fetch_plan[i] — this Block's reads a
  // batched round can serve; spec_plan[i] — Block i+1's reads that are
  // independent of everything Block i computes, eligible to ride Block i's
  // round speculatively.
  std::vector<std::vector<std::size_t>> all_ops(sequence.size());
  for (std::size_t i = 0; i < sequence.size(); ++i)
    all_ops[i] = block_ops(sequence[i], model);
  std::vector<std::vector<std::size_t>> fetch_plan;
  std::vector<std::vector<std::size_t>> spec_plan;
  if (options.batch_reads) {
    fetch_plan.resize(sequence.size());
    spec_plan.resize(sequence.size());
    for (std::size_t i = 0; i < sequence.size(); ++i) {
      fetch_plan[i] = batchable_remote_ops(program, all_ops[i]);
      if (options.prefetch && i + 1 < sequence.size())
        spec_plan[i] =
            batchable_remote_ops(program, all_ops[i + 1], all_ops[i]);
    }
  }

  const Stopwatch tx_watch;
  for (int attempt = 0;; ++attempt) {
    nesting::Transaction txn(stub_, nesting::next_tx_id());
    ir::TxEnv env(txn, program, params);
    arm_env(env);
    obs::Tracer::Span tx_span;
    if (o)
      tx_span.restart(&o->tracer, "tx", "tx", txn.id(), "attempt", attempt);
    SpecBuffer spec_buffer;
    try {
      for (std::size_t position = 0; position < sequence.size(); ++position) {
        const std::size_t slot =
            std::min(position, ExecStats::kPositionSlots - 1);
        const auto& ops = all_ops[position];
        ir::TxEnv::Snapshot snapshot = env.snapshot();
        int partial_attempts = 0;
        for (;;) {
          ++stats.blocks_executed;
          obs::Tracer::Span block_span;
          obs::ScopedLatency block_latency;
          if (o) {
            o->blocks_executed.add();
            block_span.restart(&o->tracer, "block", "block", txn.id(),
                               "position",
                               static_cast<std::int64_t>(position));
            block_latency.arm(o->block_latency_ns);
          }
          txn.begin_nested();
          try {
            if (options.batch_reads)
              batched_fetch(program, env, fetch_plan[position],
                            spec_plan[position], spec_buffer);
            for (std::size_t op : ops) execute_op(program, op, env, stats);
            txn.commit_nested();
            break;
          } catch (const dtm::TxAbort& abort) {
            ++stats.aborts_in_execution;
            // Anything speculatively fetched during this attempt (for the
            // next Block) rides on a snapshot that just proved stale or
            // never got consumed consistently — discard it; the retry (or
            // the restart) re-fetches.
            if (!spec_buffer.empty()) {
              if (o) o->prefetch_wasted.add(spec_buffer.size());
              spec_buffer.clear();
            }
            const bool partial =
                txn.classify(abort) == nesting::AbortScope::kPartial &&
                partial_attempts < config_.max_partial_retries;
            txn.abort_nested();
            if (!partial) {
              ++stats.fulls_at_position[slot];
              throw;  // escalate to a full restart
            }
            ++stats.partial_aborts;
            ++stats.partials_at_position[slot];
            ++partial_attempts;
            if (o) {
              const int reason = abort_reason_index(abort.kind());
              o->tx_aborts_partial.add();
              o->aborts_partial_reason[reason].add();
              o->tracer.instant("abort.partial", "abort", txn.id(), "position",
                                static_cast<std::int64_t>(position), nullptr,
                                0, "reason", obs::abort_reason_name(reason));
            }
            env.restore(snapshot);
            if (abort.kind() == dtm::AbortKind::kBusy)
              backoff(partial_attempts);
          }
        }
      }
      try {
        txn.commit();
      } catch (const dtm::TxAbort&) {
        ++stats.aborts_at_commit;
        throw;
      }
      ++stats.commits;
      if (o) {
        o->tx_commits.add();
        o->tx_latency_ns.observe(tx_watch.elapsed_ns());
      }
      return;
    } catch (const dtm::TxAbort& abort) {
      ++stats.full_aborts;
      if (abort.kind() == dtm::AbortKind::kBusy) ++stats.aborts_busy;
      note_full_abort(abort, txn.id());
      if (attempt >= config_.max_full_retries) throw;
      backoff(attempt);
    }
  }
}

void Executor::run_checkpointed_impl(const ir::TxProgram& program,
                                     const std::vector<ir::Record>& params,
                                     ExecStats& stats) {
  struct Checkpoint {
    std::size_t op_index;
    ir::TxEnv::Snapshot env;
    nesting::Transaction::Checkpoint txn;
  };

  obs::Observability* const o = config_.obs;
  const Stopwatch tx_watch;
  for (int attempt = 0;; ++attempt) {
    nesting::Transaction txn(stub_, nesting::next_tx_id());
    ir::TxEnv env(txn, program, params);
    arm_env(env);
    obs::Tracer::Span tx_span;
    if (o)
      tx_span.restart(&o->tracer, "tx", "tx", txn.id(), "attempt", attempt);
    std::vector<Checkpoint> checkpoints;
    std::unordered_map<ir::ObjectKey, std::size_t, store::ObjectKeyHash>
        first_read_at;
    int restores = 0;
    std::size_t resume_op = 0;

    // Roll back to the checkpoint preceding the first read of any
    // invalidated object.  Objects never seen (e.g. the busy target of the
    // read in flight) roll back to the latest checkpoint.  Returns false
    // when a full restart is required.
    auto try_restore = [&](const dtm::TxAbort& abort) {
      if (checkpoints.empty() || restores >= config_.max_partial_retries)
        return false;
      std::size_t target = checkpoints.size() - 1;
      for (const auto& key : abort.invalid()) {
        const auto it = first_read_at.find(key);
        if (it != first_read_at.end()) target = std::min(target, it->second);
      }
      Checkpoint& point = checkpoints[target];
      env.restore(std::move(point.env));
      txn.restore(std::move(point.txn));
      resume_op = point.op_index;
      checkpoints.resize(target);  // re-pushed when resume_op re-executes
      std::erase_if(first_read_at,
                    [&](const auto& entry) { return entry.second >= target; });
      ++stats.checkpoint_restores;
      ++restores;
      if (o)
        o->tracer.instant("checkpoint.restore", "abort", txn.id(), "resume_op",
                          static_cast<std::int64_t>(resume_op));
      if (abort.kind() == dtm::AbortKind::kBusy) backoff(restores);
      return true;
    };

    try {
      std::size_t op = 0;
      for (;;) {
        try {
          if (op < program.ops.size()) {
            const ir::Op& current = program.ops[op];
            if (current.is_remote()) {
              checkpoints.push_back({op, env.snapshot(), txn.checkpoint()});
              ++stats.checkpoints_taken;
            }
            execute_op(program, op, env, stats);
            if (current.is_remote())
              first_read_at.emplace(env.key_of(current.remote.out),
                                    checkpoints.size() - 1);
            ++op;
          } else {
            txn.commit();
            break;
          }
        } catch (const dtm::TxAbort& abort) {
          if (op < program.ops.size())
            ++stats.aborts_in_execution;
          else
            ++stats.aborts_at_commit;
          if (!try_restore(abort)) throw;
          op = resume_op;
        }
      }
      ++stats.commits;
      if (o) {
        o->tx_commits.add();
        o->tx_latency_ns.observe(tx_watch.elapsed_ns());
      }
      return;
    } catch (const dtm::TxAbort& abort) {
      ++stats.full_aborts;
      if (abort.kind() == dtm::AbortKind::kBusy) ++stats.aborts_busy;
      note_full_abort(abort, txn.id());
      if (attempt >= config_.max_full_retries) throw;
      backoff(attempt);
    }
  }
}

}  // namespace acn
