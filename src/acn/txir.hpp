// Transaction intermediate representation (IR).
//
// The paper's Static Module runs Soot over Java bytecode to recover, per
// transaction, (a) which statements perform remote object accesses and
// (b) the data dependencies between statements.  This reproduction replaces
// bytecode analysis with an explicit IR: workloads build a TxProgram once,
// declaring every remote access and local computation together with the
// variables it consumes and produces.  That is precisely the information the
// paper's UnitGraph carries, so the downstream analyses (UnitBlock
// formation, dependency model, Algorithm Module) are implemented faithfully
// on top of it.
//
// A program is a straight-line list of operations over numbered variables:
//   * params  — vars [0, n_params) are provided per execution (ids, amounts);
//   * kRemote — computes an ObjectKey from vars, fetches the object through
//     the transactional runtime, binds the key and stores the value in `out`;
//   * kLocal  — arbitrary local computation over vars; may buffer
//     transactional writes through TxEnv::write_object / insert_object.
// The executor is free to run operations in any order consistent with the
// declared dependencies — that freedom is what ACN exploits.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/nesting/transaction.hpp"

namespace acn::ir {

using store::ClassId;
using store::Field;
using store::ObjectKey;
using store::Record;

using VarId = std::uint32_t;
constexpr VarId kNoVar = static_cast<VarId>(-1);

class TxEnv;

/// Observation hook for variable accesses (used by the program auditor to
/// verify ops touch only their declared vars; null in production).
class AccessObserver {
 public:
  virtual ~AccessObserver() = default;
  virtual void on_get(VarId v) = 0;
  virtual void on_set(VarId v) = 0;
};

struct RemoteAccessOp {
  ClassId cls = 0;
  std::function<ObjectKey(const TxEnv&)> key_fn;
  VarId out = kNoVar;
  std::vector<VarId> key_deps;
  bool for_write = false;
};

struct LocalOp {
  std::function<void(TxEnv&)> fn;
  std::vector<VarId> reads;
  std::vector<VarId> writes;
};

struct Op {
  enum class Kind : std::uint8_t { kRemote, kLocal };

  Kind kind = Kind::kLocal;
  RemoteAccessOp remote;
  LocalOp local;
  std::string label;

  bool is_remote() const noexcept { return kind == Kind::kRemote; }

  /// Variables this op consumes / produces (uniform view over both kinds).
  std::vector<VarId> reads() const;
  std::vector<VarId> writes() const;
};

struct TxProgram {
  std::string name;
  std::size_t n_params = 0;
  std::size_t n_vars = 0;
  std::vector<Op> ops;

  std::size_t remote_op_count() const;
};

/// Storage backend a TxEnv can drive instead of a nesting::Transaction:
/// the cross-shard path (shard::Client) executes the same TxPrograms over a
/// ShardTx adapter, so workload authors never write per-runtime code.  A
/// backend buffers writes itself (read-your-writes included) and throws
/// dtm::TxAbort on conflict, like the transactional runtime.
class TxBackend {
 public:
  virtual ~TxBackend() = default;
  virtual Record read(const ObjectKey& key) = 0;
  virtual void write(const ObjectKey& key, Record value) = 0;
  virtual void insert(const ObjectKey& key, Record value) = 0;
};

/// Execution state of one transaction attempt: variable slots plus the
/// object-key bindings of remote-access outputs.  Snapshots support
/// closed-nesting partial rollback (a re-executed Block must observe the
/// variable state from before its first attempt).
class TxEnv {
 public:
  TxEnv(nesting::Transaction& txn, const TxProgram& program,
        std::vector<Record> params);

  /// Evaluation-only environment with no transaction behind it: params are
  /// bound, remote outputs stay unset.  Used to evaluate key functions
  /// before execution (footprint prediction); calling run_remote,
  /// write_object, insert_object or txn() on such an env is a logic error.
  TxEnv(const TxProgram& program, std::vector<Record> params);

  /// Backend-driven environment: remote reads/writes go through `backend`
  /// instead of a nesting::Transaction (contention piggybacking is a
  /// Transaction feature and stays inert).  txn() is a logic error.
  TxEnv(TxBackend& backend, const TxProgram& program,
        std::vector<Record> params);

  const Record& get(VarId v) const;
  Field geti(VarId v, std::size_t field = 0) const;
  void set(VarId v, Record value);
  void seti(VarId v, Field value);
  bool is_set(VarId v) const noexcept;

  /// Executes a remote access op: resolves the key, performs the
  /// transactional read (with optional contention piggyback), binds key and
  /// value to `op.out`.
  void run_remote(const RemoteAccessOp& op);

  /// Enable contention piggybacking: every remote read requests the levels
  /// of `classes` and delivers the reply to `sink` (classes, levels).
  /// This is the paper's "meta-data coupled with existing network
  /// messages" path (Section V-C2).
  using ContentionSink =
      std::function<void(const std::vector<ClassId>&,
                         const std::vector<std::uint64_t>&)>;
  void set_contention_piggyback(std::vector<ClassId> classes,
                                ContentionSink sink);

  /// Install (or clear, with nullptr) the access observer.
  void set_observer(AccessObserver* observer) noexcept {
    observer_ = observer;
  }

  /// Buffer a transactional write of `value` to the object bound to
  /// `objvar` and update the variable.
  void write_object(VarId objvar, Record value);

  /// Blind transactional insert of a fresh object.
  void insert_object(const ObjectKey& key, Record value);

  const ObjectKey& key_of(VarId objvar) const;

  nesting::Transaction& txn() {
    if (txn_ == nullptr)
      throw std::logic_error("TxEnv::txn on an evaluation-only env");
    return *txn_;
  }

  struct Snapshot {
    std::vector<std::optional<Record>> vars;
    std::vector<std::optional<ObjectKey>> keys;
  };
  Snapshot snapshot() const { return {vars_, keys_}; }
  void restore(Snapshot snapshot) {
    vars_ = std::move(snapshot.vars);
    keys_ = std::move(snapshot.keys);
  }

 private:
  nesting::Transaction* txn_;
  TxBackend* backend_ = nullptr;
  std::vector<std::optional<Record>> vars_;
  std::vector<std::optional<ObjectKey>> keys_;
  std::vector<ClassId> piggyback_classes_;
  ContentionSink piggyback_sink_;
  AccessObserver* observer_ = nullptr;
};

/// Fluent construction of TxPrograms.
///
///   ProgramBuilder b("transfer", /*n_params=*/3);
///   auto acc = b.remote_read(kAccount, {b.param(0)},
///                            [](const TxEnv& e) { return account_key(e.geti(0)); },
///                            "read account1");
///   b.local({acc, b.param(2)}, {acc},
///           [=](TxEnv& e) { ... e.write_object(acc, updated); }, "withdraw");
///   TxProgram p = b.build();
class ProgramBuilder {
 public:
  ProgramBuilder(std::string name, std::size_t n_params);

  VarId param(std::size_t i) const;
  VarId fresh_var();

  VarId remote_read(ClassId cls, std::vector<VarId> key_deps,
                    std::function<ObjectKey(const TxEnv&)> key_fn,
                    std::string label, bool for_write = false);

  void local(std::vector<VarId> reads, std::vector<VarId> writes,
             std::function<void(TxEnv&)> fn, std::string label);

  TxProgram build();

 private:
  TxProgram program_;
  bool built_ = false;
};

}  // namespace acn::ir
