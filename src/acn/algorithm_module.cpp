#include "src/acn/algorithm_module.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acn {

AlgorithmModule::AlgorithmModule(const ir::TxProgram& program,
                                 AlgorithmConfig config,
                                 std::shared_ptr<const ContentionModel> model)
    : program_(&program), config_(config), model_(std::move(model)) {
  if (!model_) throw std::invalid_argument("AlgorithmModule: null model");
}

ClassLevels AlgorithmModule::transform(const RawLevels& raw) const {
  ClassLevels out;
  out.reserve(raw.size());
  for (const auto& [cls, writes] : raw) out[cls] = model_->object_level(writes);
  return out;
}

double AlgorithmModule::unit_level(const UnitBlock& unit,
                                   const ClassLevels& levels) const {
  std::vector<double> access_levels;
  access_levels.reserve(unit.classes.size());
  for (ir::ClassId cls : unit.classes) {
    const auto it = levels.find(cls);
    access_levels.push_back(it == levels.end() ? 0.0 : it->second);
  }
  return model_->combine(access_levels);
}

double AlgorithmModule::block_level(const Block& block,
                                    const DependencyModel& model,
                                    const ClassLevels& levels) const {
  std::vector<double> access_levels;
  for (std::size_t u : block.units)
    for (ir::ClassId cls : model.units[u].classes) {
      const auto it = levels.find(cls);
      access_levels.push_back(it == levels.end() ? 0.0 : it->second);
    }
  return model_->combine(access_levels);
}

Plan AlgorithmModule::initial() const {
  Plan plan;
  plan.model = build_dependency_model(*program_, AttachPolicy::kLatestProducer);
  plan.sequence = initial_sequence(plan.model);
  return plan;
}

BlockSequence AlgorithmModule::merge_step(const DependencyModel& model,
                                          const RawLevels& raw) const {
  BlockSequence seq = initial_sequence(model);
  merge_adjacent(seq, model, raw);
  return seq;
}

void AlgorithmModule::merge_adjacent(BlockSequence& seq,
                                     const DependencyModel& model,
                                     const RawLevels& raw) const {
  // Similarity is judged on each block's *hottest unit* in raw write-count
  // space: combined levels grow with every merge (a cold aggregate would
  // eventually look "similar" to the hot spot), and a saturating
  // ContentionModel compresses hot-vs-warm differences near 1.0.
  auto merge_level = [&](const Block& block) {
    std::uint64_t hottest = 0;
    for (std::size_t u : block.units)
      for (ir::ClassId cls : model.units[u].classes) {
        const auto it = raw.find(cls);
        if (it != raw.end()) hottest = std::max(hottest, it->second);
      }
    return static_cast<double>(hottest);
  };
  std::size_t i = 0;
  while (i + 1 < seq.size()) {
    const double la = merge_level(seq[i]);
    const double lb = merge_level(seq[i + 1]);
    const bool similar = std::abs(la - lb) <=
                         config_.merge_threshold *
                             std::max({la, lb, config_.level_floor});
    const bool allowed = !config_.merge_requires_dependency ||
                         blocks_dependent(seq[i], seq[i + 1], model);
    if (similar && allowed) {
      seq[i].units.insert(seq[i].units.end(), seq[i + 1].units.begin(),
                          seq[i + 1].units.end());
      seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      // Re-examine the grown block against its new right neighbour.
    } else {
      ++i;
    }
  }
}

BlockSequence AlgorithmModule::reorder_step(BlockSequence sequence,
                                            const DependencyModel& model,
                                            const ClassLevels& levels) const {
  // Block-level precedence: a -> b when some unit of a must precede a unit
  // of b.  (The input sequence is valid, so edges never point backward; we
  // rebuild the order greedily: among blocks whose predecessors are all
  // scheduled, pick the coldest, breaking ties by original position.)
  const std::size_t n = sequence.size();
  std::vector<std::size_t> block_of(model.units.size());
  for (std::size_t b = 0; b < n; ++b)
    for (std::size_t u : sequence[b].units) block_of[u] = b;

  std::vector<std::vector<std::size_t>> bsucc(n);
  std::vector<std::size_t> indegree(n, 0);
  for (std::size_t u = 0; u < model.units.size(); ++u) {
    for (std::size_t v : model.succs[u]) {
      const std::size_t a = block_of[u];
      const std::size_t b = block_of[v];
      if (a == b) continue;
      if (std::find(bsucc[a].begin(), bsucc[a].end(), b) == bsucc[a].end()) {
        bsucc[a].push_back(b);
        ++indegree[b];
      }
    }
  }

  std::vector<double> level_of(n);
  for (std::size_t b = 0; b < n; ++b)
    level_of[b] = block_level(sequence[b], model, levels);

  std::vector<bool> scheduled(n, false);
  BlockSequence out;
  out.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = kNoUnit;
    for (std::size_t b = 0; b < n; ++b) {
      if (scheduled[b] || indegree[b] != 0) continue;
      if (best == kNoUnit || level_of[b] < level_of[best]) best = b;
    }
    if (best == kNoUnit)
      throw std::logic_error("reorder_step: cyclic block dependencies");
    scheduled[best] = true;
    out.push_back(sequence[best]);
    for (std::size_t v : bsucc[best]) --indegree[v];
  }
  return out;
}

Plan AlgorithmModule::recompute(const RawLevels& raw) const {
  Plan plan;
  plan.levels_used = transform(raw);

  // Step 1: re-split to single-access units; dependent local computation
  // follows the most contended access it manages.
  plan.model = build_dependency_model(
      *program_,
      config_.enable_resplit ? AttachPolicy::kMostContended
                             : AttachPolicy::kLatestProducer,
      plan.levels_used);

  // Step 2: merge adjacent dependent units with similar contention.
  plan.sequence = config_.enable_merge ? merge_step(plan.model, raw)
                                       : initial_sequence(plan.model);

  // Step 3: coldest first, hottest nearest the commit phase.
  if (config_.enable_reorder) {
    plan.sequence = reorder_step(std::move(plan.sequence), plan.model,
                                 plan.levels_used);
    // Sorting brings same-level blocks next to each other (e.g. the five
    // TPC-C stock accesses, separated by item reads in source order), so a
    // second merge pass captures groups adjacency hid from the first; it
    // preserves both validity and the sort order.
    if (config_.enable_merge) merge_adjacent(plan.sequence, plan.model, raw);
  }
  return plan;
}

}  // namespace acn
