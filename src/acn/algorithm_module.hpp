// Algorithm Module (Section V-C3).
//
// Runs periodically on clients.  Input: the transaction program (through its
// dependency analysis), the contention level of each object class (Dynamic
// Module), and a ContentionModel.  Output: a new Block Sequence.  Three
// steps, exactly as the paper lays out:
//   Step 1 — discard the previous composition and re-partition into
//     single-access UnitBlocks, attaching each local operation to the most
//     contended UnitBlock among those accessing an object it depends on;
//   Step 2 — merge adjacent *dependent* UnitBlocks whose contention levels
//     are similar (within a configurable threshold), so an invalidation of
//     either re-executes one block instead of escalating to a full abort;
//   Step 3 — sort Blocks by ascending contention level while preserving
//     every data dependency, putting the hottest Blocks next to the commit
//     phase where their exposure window is shortest.
// Each step can be disabled individually for the ablation benches.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/acn/blocks.hpp"
#include "src/acn/contention_model.hpp"
#include "src/acn/unitgraph.hpp"

namespace acn {

/// Windowed write counts per class, as fetched from quorum servers.
using RawLevels = std::unordered_map<ir::ClassId, std::uint64_t>;

struct AlgorithmConfig {
  /// Step 2 merges neighbours when |la - lb| <= merge_threshold *
  /// max(la, lb, level_floor).
  double merge_threshold = 0.5;
  double level_floor = 1e-9;

  /// Step 2's strict reading merges only *dependent* neighbours (the
  /// paper's V-C3 wording); its Figure 3, however, merges the two
  /// independent account UnitBlocks into one Block, so the default also
  /// merges independent neighbours with similar contention — they move
  /// together during Step 3 and save nesting overhead.  Set true for the
  /// strict-reading ablation.
  bool merge_requires_dependency = false;

  bool enable_resplit = true;  // Step 1
  bool enable_merge = true;    // Step 2
  bool enable_reorder = true;  // Step 3
};

/// A fully materialized execution plan: the dependency model the sequence
/// refers to plus the sequence itself.  Immutable once published.
struct Plan {
  DependencyModel model;
  BlockSequence sequence;
  ClassLevels levels_used;  // model-transformed levels the plan was built from
};

class AlgorithmModule {
 public:
  AlgorithmModule(const ir::TxProgram& program, AlgorithmConfig config,
                  std::shared_ptr<const ContentionModel> model);

  /// The deployment-time plan: static analysis only (latest-producer
  /// attachment, one unit per block, source order).
  Plan initial() const;

  /// The periodic re-composition from fresh contention levels.
  Plan recompute(const RawLevels& raw) const;

  /// Contention level of a block under `levels`.
  double block_level(const Block& block, const DependencyModel& model,
                     const ClassLevels& levels) const;

  /// Contention level of one unit.
  double unit_level(const UnitBlock& unit, const ClassLevels& levels) const;

  const AlgorithmConfig& config() const noexcept { return config_; }
  const ir::TxProgram& program() const noexcept { return *program_; }

 private:
  ClassLevels transform(const RawLevels& raw) const;
  /// Step 2 judges similarity on *raw* write counts: they compare
  /// scale-free, whereas a saturating ContentionModel (e.g. abort
  /// probability) compresses hot-vs-warm differences near 1.0.
  BlockSequence merge_step(const DependencyModel& model,
                           const RawLevels& raw) const;
  /// One left-to-right pass merging similar adjacent blocks in place.
  void merge_adjacent(BlockSequence& seq, const DependencyModel& model,
                      const RawLevels& raw) const;
  BlockSequence reorder_step(BlockSequence sequence, const DependencyModel& model,
                             const ClassLevels& levels) const;

  const ir::TxProgram* program_;
  AlgorithmConfig config_;
  std::shared_ptr<const ContentionModel> model_;
};

}  // namespace acn
