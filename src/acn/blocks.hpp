// Blocks and Block Sequences (Section V-B).
//
// A Block groups one or more UnitBlocks and is executed as a single
// closed-nested transaction.  A BlockSequence is an ordered list of Blocks
// covering every UnitBlock exactly once; it is valid when every unit-level
// dependency points forward (same Block counts as satisfied, since ops
// inside a Block run in program order).
#pragma once

#include <string>
#include <vector>

#include "src/acn/unitgraph.hpp"

namespace acn {

struct Block {
  std::vector<std::size_t> units;  // indices into DependencyModel::units
};

using BlockSequence = std::vector<Block>;

/// One unit per block, in the model's canonical (static-analysis) order.
BlockSequence initial_sequence(const DependencyModel& model);

/// All units in a single block: semantically the flat transaction.
BlockSequence single_block(const DependencyModel& model);

/// Every unit appears exactly once and every dependency edge lands in the
/// same or a later block.
bool sequence_valid(const BlockSequence& sequence, const DependencyModel& model);

/// Ops of a block in execution order (ascending program index).
std::vector<std::size_t> block_ops(const Block& block, const DependencyModel& model);

/// Remote ops of `window` (program indices, ascending) whose key
/// dependencies are produced neither by an earlier op of `window` nor by
/// any op of `prior`: their object keys are computable before the window's
/// first op runs, so one batched quorum round can fetch them all.  With a
/// non-empty `prior` this answers the prefetch question — which of the
/// *next* block's reads are independent of everything the current block
/// (`prior`) computes.
std::vector<std::size_t> batchable_remote_ops(
    const ir::TxProgram& program, const std::vector<std::size_t>& window,
    const std::vector<std::size_t>& prior = {});

/// True when blocks `a` and `b` are connected by at least one direct
/// dependency edge in either direction.
bool blocks_dependent(const Block& a, const Block& b, const DependencyModel& model);

std::string describe_sequence(const BlockSequence& sequence,
                              const DependencyModel& model);

}  // namespace acn
