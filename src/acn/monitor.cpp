#include "src/acn/monitor.hpp"

#include <algorithm>

namespace acn {

ContentionMonitor::ContentionMonitor(std::vector<ir::ClassId> classes)
    : classes_(std::move(classes)) {
  std::sort(classes_.begin(), classes_.end());
  classes_.erase(std::unique(classes_.begin(), classes_.end()), classes_.end());
}

void ContentionMonitor::refresh(dtm::QuorumStub& stub) {
  obs::Tracer::Span span;
  if (obs_) {
    obs_->monitor_refreshes.add();
    span.restart(&obs_->tracer, "acn.monitor.refresh", "acn", 0, "classes",
                 static_cast<std::int64_t>(classes_.size()));
  }
  const auto levels = stub.contention_levels(classes_);
  std::lock_guard lock(mutex_);
  raw_.clear();
  for (std::size_t i = 0; i < classes_.size(); ++i) raw_[classes_[i]] = levels[i];
}

void ContentionMonitor::observe(const std::vector<ir::ClassId>& classes,
                                const std::vector<std::uint64_t>& levels) {
  if (obs_) obs_->monitor_observes.add();
  std::lock_guard lock(mutex_);
  for (std::size_t i = 0; i < classes.size() && i < levels.size(); ++i) {
    auto& slot = raw_[classes[i]];
    slot = std::max(slot, levels[i]);
  }
}

void ContentionMonitor::reset() {
  std::lock_guard lock(mutex_);
  raw_.clear();
}

RawLevels ContentionMonitor::raw() const {
  std::lock_guard lock(mutex_);
  return raw_;
}

std::uint64_t ContentionMonitor::level(ir::ClassId cls) const {
  std::lock_guard lock(mutex_);
  const auto it = raw_.find(cls);
  return it == raw_.end() ? 0 : it->second;
}

}  // namespace acn
