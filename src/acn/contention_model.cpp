#include "src/acn/contention_model.hpp"

namespace acn {

double WriteRateModel::combine(const std::vector<double>& levels) const {
  double total = 0.0;
  for (double level : levels) total += level;
  return total;
}

double AbortProbabilityModel::combine(const std::vector<double>& levels) const {
  double survive = 1.0;
  for (double level : levels) survive *= (1.0 - level);
  return 1.0 - survive;
}

std::shared_ptr<const ContentionModel> default_contention_model() {
  return std::make_shared<AbortProbabilityModel>();
}

}  // namespace acn
