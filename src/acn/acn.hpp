// Umbrella header: everything a library user needs.
//
//   #include "src/acn/acn.hpp"
//
// pulls in the transaction IR, the static analysis, the Algorithm Module,
// the adaptive controller and the Executor Engine, plus the DTM substrate
// types they surface (keys, records, stubs, transactions).  The simulated
// cluster and the benchmark driver live separately in src/harness.
#pragma once

#include "src/acn/algorithm_module.hpp"
#include "src/acn/blocks.hpp"
#include "src/acn/contention_model.hpp"
#include "src/acn/controller.hpp"
#include "src/acn/executor.hpp"
#include "src/acn/monitor.hpp"
#include "src/acn/txir.hpp"
#include "src/acn/unitgraph.hpp"
#include "src/dtm/quorum_stub.hpp"
#include "src/nesting/history.hpp"
#include "src/nesting/transaction.hpp"
