// Contention models (Section V-C2).
//
// QR-ACN deliberately leaves the characterization of "hot" pluggable: the
// framework feeds windowed write counts in, a ContentionModel turns them
// into comparable levels and composes the level of a multi-access Block.
// Two models ship:
//   * WriteRateModel — levels are raw write counts, blocks add up.  Cheap
//     and monotone; what the paper's own evaluation approximates.
//   * AbortProbabilityModel — the di Sanzo-style analytic approximation the
//     paper cites: an object's level is the probability that a transaction
//     accessing it aborts, p = w / (w + k) with half-saturation k, and a
//     block accessing several objects aborts unless all survive:
//     P = 1 - prod(1 - p_i).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace acn {

class ContentionModel {
 public:
  virtual ~ContentionModel() = default;

  /// Level of one object class given its write count in the last window.
  virtual double object_level(std::uint64_t writes_in_window) const = 0;

  /// Level of a code region performing accesses with the given levels.
  virtual double combine(const std::vector<double>& levels) const = 0;
};

class WriteRateModel final : public ContentionModel {
 public:
  double object_level(std::uint64_t writes_in_window) const override {
    return static_cast<double>(writes_in_window);
  }
  double combine(const std::vector<double>& levels) const override;
};

class AbortProbabilityModel final : public ContentionModel {
 public:
  explicit AbortProbabilityModel(double half_saturation = 16.0)
      : half_saturation_(half_saturation) {}

  double object_level(std::uint64_t writes_in_window) const override {
    const double w = static_cast<double>(writes_in_window);
    return w / (w + half_saturation_);
  }
  double combine(const std::vector<double>& levels) const override;

 private:
  double half_saturation_;
};

std::shared_ptr<const ContentionModel> default_contention_model();

}  // namespace acn
