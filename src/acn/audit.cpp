#include "src/acn/audit.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/nesting/transaction.hpp"

namespace acn {
namespace {

class RecordingObserver final : public ir::AccessObserver {
 public:
  void on_get(ir::VarId v) override { reads_.push_back(v); }
  void on_set(ir::VarId v) override { writes_.push_back(v); }

  void reset() {
    reads_.clear();
    writes_.clear();
  }
  const std::vector<ir::VarId>& reads() const { return reads_; }
  const std::vector<ir::VarId>& writes() const { return writes_; }

 private:
  std::vector<ir::VarId> reads_;
  std::vector<ir::VarId> writes_;
};

bool contains(const std::vector<ir::VarId>& list, ir::VarId v) {
  return std::find(list.begin(), list.end(), v) != list.end();
}

}  // namespace

std::string AuditViolation::describe() const {
  std::string out = "op " + std::to_string(op_index);
  if (!op_label.empty()) out += " (" + op_label + ")";
  out += kind == Kind::kUndeclaredRead ? " reads" : " writes";
  out += " undeclared var " + std::to_string(var);
  return out;
}

std::vector<AuditViolation> audit_program(const ir::TxProgram& program,
                                          const std::vector<ir::Record>& params,
                                          dtm::QuorumStub& stub) {
  nesting::Transaction txn(stub, nesting::next_tx_id());
  ir::TxEnv env(txn, program, params);
  RecordingObserver observer;
  env.set_observer(&observer);

  std::vector<AuditViolation> violations;
  auto flag = [&](std::size_t op_index, ir::VarId var,
                  AuditViolation::Kind kind) {
    // Deduplicate repeated accesses within the same op.
    for (const auto& existing : violations)
      if (existing.op_index == op_index && existing.var == var &&
          existing.kind == kind)
        return;
    violations.push_back(
        {op_index, program.ops[op_index].label, var, kind});
  };

  for (std::size_t i = 0; i < program.ops.size(); ++i) {
    const ir::Op& op = program.ops[i];
    observer.reset();
    const std::vector<ir::VarId> declared_reads = op.reads();
    const std::vector<ir::VarId> declared_writes = op.writes();
    if (op.is_remote())
      env.run_remote(op.remote);
    else
      op.local.fn(env);

    for (const ir::VarId v : observer.reads()) {
      const bool is_param = v < program.n_params;
      if (!is_param && !contains(declared_reads, v) &&
          !contains(declared_writes, v))
        flag(i, v, AuditViolation::Kind::kUndeclaredRead);
    }
    for (const ir::VarId v : observer.writes()) {
      if (!contains(declared_writes, v))
        flag(i, v, AuditViolation::Kind::kUndeclaredWrite);
    }
  }
  // Deliberately no commit: the audit leaves no trace in the cluster.
  return violations;
}

void expect_clean_audit(const ir::TxProgram& program,
                        const std::vector<ir::Record>& params,
                        dtm::QuorumStub& stub) {
  const auto violations = audit_program(program, params, stub);
  if (violations.empty()) return;
  std::string what = "program '" + program.name + "' failed its audit:";
  for (const auto& violation : violations)
    what += "\n  " + violation.describe();
  throw std::logic_error(what);
}

}  // namespace acn
