// Static Module: data-dependency analysis and UnitBlock formation
// (Section V-B / V-C1 of the paper).
//
// From a TxProgram we recover:
//   * op-level dependencies — for every operation, which earlier operations
//     produced its inputs (RAW) plus the ordering constraints of WAR/WAW on
//     shared variables;
//   * UnitBlocks — one per remote object access; every local operation is
//     attached to a UnitBlock per the paper's rule: to the UnitBlock
//     containing an access to one of the shared objects it manipulates
//     (transitively, for chains of local operations).  Two attachment
//     policies exist:
//       - kLatestProducer: the *latest* such UnitBlock (the static default
//         the paper describes in V-C1);
//       - kMostContended: the most contended such UnitBlock (Step 1 of the
//         Algorithm Module, V-C3), so that when the hot object invalidates,
//         its dependent recomputation re-executes inside the same cheap
//         sub-transaction;
//   * the dependency model — unit-level precedence edges, the constraint
//     set under which Blocks may be merged and reordered.
//
// Attachment is cycle-aware: a candidate that would make the unit graph
// cyclic is skipped.  If every candidate would (mutually-dependent accesses
// interleaved through local ops), the offending units are merged — a merged
// UnitBlock carries more than one remote access, which merely means those
// accesses are inseparable and will always live in the same sub-transaction.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/acn/txir.hpp"

namespace acn {

constexpr std::size_t kNoUnit = static_cast<std::size_t>(-1);

struct UnitBlock {
  std::vector<std::size_t> ops;         // op indices, ascending
  std::vector<std::size_t> remote_ops;  // subset of ops that access objects
  std::vector<ir::ClassId> classes;     // classes of those accesses

  bool single_access() const noexcept { return remote_ops.size() == 1; }
};

/// Per-class contention levels, as reported by the Dynamic Module.
using ClassLevels = std::unordered_map<ir::ClassId, double>;

enum class AttachPolicy {
  kLatestProducer,
  kMostContended,
};

struct DependencyModel {
  const ir::TxProgram* program = nullptr;

  /// Units in canonical order: a topological order of the unit graph with
  /// ties broken by earliest op index (this is the Block Sequence the
  /// static analysis yields before any run-time refinement).
  std::vector<UnitBlock> units;

  /// preds[u] / succs[u]: direct dependency edges between units, indices
  /// into `units`.  An edge a -> b (b in succs[a]) means a must execute
  /// before b.
  std::vector<std::vector<std::size_t>> preds;
  std::vector<std::vector<std::size_t>> succs;

  /// unit_of_op[i] = which unit op i belongs to.
  std::vector<std::size_t> unit_of_op;

  /// How many times cycle resolution had to merge units (diagnostics; 0 for
  /// well-structured programs).
  std::size_t forced_merges = 0;

  bool depends(std::size_t pred, std::size_t succ) const;

  /// True when `order` (indices into units, a permutation) respects every
  /// dependency edge.
  bool order_valid(const std::vector<std::size_t>& order) const;

  /// Human-readable dump (used by the decomposition example and tests).
  std::string describe() const;

  /// Graphviz DOT rendering of the unit graph: one node per UnitBlock
  /// (listing its ops), one edge per dependency.  Pipe through `dot -Tsvg`
  /// to visualize a transaction's structure.
  std::string to_dot(const std::string& graph_name = "unitgraph") const;
};

/// Direct op-level dependencies: result[i] lists ops j < i that op i
/// depends on (RAW, WAR and WAW through variables).  Exposed for tests.
std::vector<std::vector<std::size_t>> op_dependencies(const ir::TxProgram& program);

/// Like op_dependencies but restricted to true data flow (RAW).
std::vector<std::vector<std::size_t>> op_dataflow(const ir::TxProgram& program);

/// Build the dependency model.  `class_levels` is consulted only by
/// kMostContended (unknown classes default to level 0).
/// Throws std::invalid_argument for programs with no remote access.
DependencyModel build_dependency_model(const ir::TxProgram& program,
                                       AttachPolicy policy,
                                       const ClassLevels& class_levels = {});
/// The model keeps a pointer to `program`, so a temporary would dangle.
DependencyModel build_dependency_model(ir::TxProgram&& program, AttachPolicy,
                                       const ClassLevels& = {}) = delete;

}  // namespace acn
