#include "src/acn/controller.hpp"

#include <algorithm>

namespace acn {

AdaptiveController::AdaptiveController(
    const ir::TxProgram& program, AlgorithmConfig config,
    std::shared_ptr<const ContentionModel> model)
    : algorithm_(program, config, std::move(model)) {
  plan_ = std::make_shared<const Plan>(algorithm_.initial());
}

std::shared_ptr<const Plan> AdaptiveController::plan() const {
  std::lock_guard lock(mutex_);
  return plan_;
}

bool same_composition(const Plan& a, const Plan& b) {
  if (a.sequence.size() != b.sequence.size()) return false;
  for (std::size_t i = 0; i < a.sequence.size(); ++i)
    if (block_ops(a.sequence[i], a.model) != block_ops(b.sequence[i], b.model))
      return false;
  return true;
}

void AdaptiveController::adapt(const RawLevels& raw) {
  auto next = std::make_shared<const Plan>(algorithm_.recompute(raw));
  std::lock_guard lock(mutex_);
  ++adaptations_;
  if (obs_) obs_->adaptations.add();
  // Publishing an identical composition would only churn readers' caches;
  // swap only when the layout genuinely changed.
  if (same_composition(*next, *plan_)) return;
  const std::size_t old_blocks = plan_->sequence.size();
  const std::size_t new_blocks = next->sequence.size();
  plan_ = std::move(next);
  ++recompositions_;
  if (obs_) {
    obs_->recompositions.add();
    obs_->plan_blocks.set(static_cast<std::int64_t>(new_blocks));
    obs_->tracer.instant("acn.replan", "acn", 0, "old_blocks",
                         static_cast<std::int64_t>(old_blocks), "new_blocks",
                         static_cast<std::int64_t>(new_blocks));
  }
}

void AdaptiveController::adapt_from(ContentionMonitor& monitor,
                                    dtm::QuorumStub& stub) {
  monitor.refresh(stub);
  adapt(monitor.raw());
}

std::vector<ir::ClassId> AdaptiveController::touched_classes() const {
  std::vector<ir::ClassId> classes;
  for (const auto& op : algorithm_.program().ops)
    if (op.is_remote()) classes.push_back(op.remote.cls);
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
  return classes;
}

}  // namespace acn
