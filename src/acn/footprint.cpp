#include "src/acn/footprint.hpp"

#include <algorithm>

namespace acn {

KeyFootprint predicted_footprint(const ir::TxProgram& program,
                                 const std::vector<ir::Record>& params) {
  const ir::TxEnv env(program, params);  // evaluation-only: no transaction
  KeyFootprint footprint;
  std::vector<ir::VarId> outs;  // remote out var per predicted entry
  for (const auto& op : program.ops) {
    if (!op.is_remote()) continue;
    const bool param_only = std::all_of(
        op.remote.key_deps.begin(), op.remote.key_deps.end(),
        [&](ir::VarId v) { return v < program.n_params; });
    if (!param_only) continue;
    footprint.push_back({op.remote.key_fn(env), op.remote.for_write});
    outs.push_back(op.remote.out);
  }
  // Write intent: a remote read whose out var a later local op writes
  // (write_object through that var) is a read-modify-write on its key.
  for (const auto& op : program.ops) {
    if (op.is_remote()) continue;
    for (const ir::VarId written : op.local.writes)
      for (std::size_t i = 0; i < outs.size(); ++i)
        if (outs[i] == written) footprint[i].for_write = true;
  }
  std::sort(footprint.begin(), footprint.end(),
            [](const FootprintEntry& a, const FootprintEntry& b) {
              return a.key < b.key;
            });
  // Deduplicate, keeping for_write sticky across merged duplicates.
  KeyFootprint unique;
  for (auto& entry : footprint) {
    if (!unique.empty() && unique.back().key == entry.key)
      unique.back().for_write |= entry.for_write;
    else
      unique.push_back(entry);
  }
  return unique;
}

TxOutcome outcome_of(const dtm::TxAbort& abort) noexcept {
  switch (abort.kind()) {
    case dtm::AbortKind::kValidation:
      return TxOutcome::kValidation;
    case dtm::AbortKind::kBusy:
      return abort.detail() == dtm::AbortDetail::kLeaseExpired
                 ? TxOutcome::kLeaseExpired
                 : TxOutcome::kBusy;
    case dtm::AbortKind::kUnavailable:
      return TxOutcome::kUnavailable;
  }
  return TxOutcome::kUnavailable;
}

std::vector<std::uint32_t> shards_touched(
    const KeyFootprint& footprint,
    const std::function<std::uint32_t(const ir::ObjectKey&)>& shard_of) {
  std::vector<std::uint32_t> shards;
  shards.reserve(footprint.size());
  for (const FootprintEntry& entry : footprint)
    shards.push_back(shard_of(entry.key));
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

}  // namespace acn
