#include "src/acn/txir.hpp"

#include <stdexcept>

namespace acn::ir {

std::vector<VarId> Op::reads() const {
  return kind == Kind::kRemote ? remote.key_deps : local.reads;
}

std::vector<VarId> Op::writes() const {
  if (kind == Kind::kRemote) return {remote.out};
  return local.writes;
}

std::size_t TxProgram::remote_op_count() const {
  std::size_t n = 0;
  for (const auto& op : ops)
    if (op.is_remote()) ++n;
  return n;
}

TxEnv::TxEnv(nesting::Transaction& txn, const TxProgram& program,
             std::vector<Record> params)
    : txn_(&txn), vars_(program.n_vars), keys_(program.n_vars) {
  if (params.size() != program.n_params)
    throw std::invalid_argument("TxEnv: wrong number of params for " +
                                program.name);
  for (std::size_t i = 0; i < params.size(); ++i) vars_[i] = std::move(params[i]);
}

TxEnv::TxEnv(const TxProgram& program, std::vector<Record> params)
    : txn_(nullptr), vars_(program.n_vars), keys_(program.n_vars) {
  if (params.size() != program.n_params)
    throw std::invalid_argument("TxEnv: wrong number of params for " +
                                program.name);
  for (std::size_t i = 0; i < params.size(); ++i) vars_[i] = std::move(params[i]);
}

TxEnv::TxEnv(TxBackend& backend, const TxProgram& program,
             std::vector<Record> params)
    : txn_(nullptr), backend_(&backend), vars_(program.n_vars),
      keys_(program.n_vars) {
  if (params.size() != program.n_params)
    throw std::invalid_argument("TxEnv: wrong number of params for " +
                                program.name);
  for (std::size_t i = 0; i < params.size(); ++i) vars_[i] = std::move(params[i]);
}

const Record& TxEnv::get(VarId v) const {
  if (observer_) observer_->on_get(v);
  const auto& slot = vars_.at(v);
  if (!slot)
    throw std::logic_error("TxEnv::get of unset var " + std::to_string(v));
  return *slot;
}

Field TxEnv::geti(VarId v, std::size_t field) const { return get(v)[field]; }

void TxEnv::set(VarId v, Record value) {
  if (observer_) observer_->on_set(v);
  vars_.at(v) = std::move(value);
}

void TxEnv::seti(VarId v, Field value) {
  if (observer_) observer_->on_set(v);
  vars_.at(v) = Record{value};
}

bool TxEnv::is_set(VarId v) const noexcept {
  return v < vars_.size() && vars_[v].has_value();
}

void TxEnv::run_remote(const RemoteAccessOp& op) {
  const ObjectKey key = op.key_fn(*this);
  if (backend_ != nullptr) {
    vars_.at(op.out) = backend_->read(key);
    keys_.at(op.out) = key;
    return;
  }
  if (piggyback_sink_) {
    std::vector<std::uint64_t> levels;
    const Record& value = txn().read(key, piggyback_classes_, levels);
    if (!levels.empty()) piggyback_sink_(piggyback_classes_, levels);
    vars_.at(op.out) = value;
  } else {
    vars_.at(op.out) = txn().read(key);
  }
  keys_.at(op.out) = key;
}

void TxEnv::set_contention_piggyback(std::vector<ClassId> classes,
                                     ContentionSink sink) {
  piggyback_classes_ = std::move(classes);
  piggyback_sink_ = std::move(sink);
}

void TxEnv::write_object(VarId objvar, Record value) {
  if (observer_) {
    observer_->on_get(objvar);  // depends on the access that bound the key
    observer_->on_set(objvar);
  }
  const auto& key = keys_.at(objvar);
  if (!key)
    throw std::logic_error("TxEnv::write_object: var " + std::to_string(objvar) +
                           " is not bound to an object");
  if (backend_ != nullptr)
    backend_->write(*key, value);
  else
    txn().write(*key, value);
  vars_.at(objvar) = std::move(value);
}

void TxEnv::insert_object(const ObjectKey& key, Record value) {
  if (backend_ != nullptr)
    backend_->insert(key, std::move(value));
  else
    txn().insert(key, std::move(value));
}

const ObjectKey& TxEnv::key_of(VarId objvar) const {
  const auto& key = keys_.at(objvar);
  if (!key)
    throw std::logic_error("TxEnv::key_of: var " + std::to_string(objvar) +
                           " is not bound to an object");
  return *key;
}

ProgramBuilder::ProgramBuilder(std::string name, std::size_t n_params) {
  program_.name = std::move(name);
  program_.n_params = n_params;
  program_.n_vars = n_params;
}

VarId ProgramBuilder::param(std::size_t i) const {
  if (i >= program_.n_params)
    throw std::out_of_range("ProgramBuilder::param out of range");
  return static_cast<VarId>(i);
}

VarId ProgramBuilder::fresh_var() {
  return static_cast<VarId>(program_.n_vars++);
}

VarId ProgramBuilder::remote_read(ClassId cls, std::vector<VarId> key_deps,
                                  std::function<ObjectKey(const TxEnv&)> key_fn,
                                  std::string label, bool for_write) {
  const VarId out = fresh_var();
  Op op;
  op.kind = Op::Kind::kRemote;
  op.remote = {cls, std::move(key_fn), out, std::move(key_deps), for_write};
  op.label = std::move(label);
  program_.ops.push_back(std::move(op));
  return out;
}

void ProgramBuilder::local(std::vector<VarId> reads, std::vector<VarId> writes,
                           std::function<void(TxEnv&)> fn, std::string label) {
  Op op;
  op.kind = Op::Kind::kLocal;
  op.local = {std::move(fn), std::move(reads), std::move(writes)};
  op.label = std::move(label);
  program_.ops.push_back(std::move(op));
}

TxProgram ProgramBuilder::build() {
  if (built_) throw std::logic_error("ProgramBuilder::build called twice");
  built_ = true;
  return std::move(program_);
}

}  // namespace acn::ir
