// Predicted key footprints and the scheduler gate the executor talks to.
//
// The contention-aware scheduler (src/sched) wants to know, *before* a
// transaction touches the network, which object keys it is going to access
// — so conflicting transactions can be serialized through local ticket
// queues instead of racing to abort each other.  The prediction comes from
// the same static analysis the decomposition framework already runs: a
// remote access whose key function depends only on transaction parameters
// (key_deps ⊆ params, the UnitGraph's read-set entries with no produced
// inputs) has a key that is computable at submission time.  Keys produced
// mid-transaction (pointer chases, TPC-C order lines keyed by a fetched
// counter) are invisible to the prediction; the scheduler stays correct
// because queueing is an optimization — optimistic concurrency control
// still validates everything — just blind to those keys.
//
// The SchedulerGate is the inversion that keeps the layering acyclic
// (net → dtm → nesting/acn → sched → harness): the executor calls an
// abstract gate, src/sched implements it, the harness wires the two
// together.  Mirrors how dtm::DurabilitySink breaks the dtm → wal cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/acn/txir.hpp"
#include "src/dtm/abort.hpp"

namespace acn {

struct FootprintEntry {
  ir::ObjectKey key;
  bool for_write = false;
};

/// Canonically ordered (ascending key), deduplicated predicted footprint;
/// a key read and written appears once with for_write = true.
using KeyFootprint = std::vector<FootprintEntry>;

/// Evaluate the statically predictable footprint of one execution of
/// `program` with `params` bound: every remote access whose key_deps are
/// all parameters.  Key functions of such ops are pure over params, so no
/// transaction is needed.
KeyFootprint predicted_footprint(const ir::TxProgram& program,
                                 const std::vector<ir::Record>& params);

/// The distinct shards `footprint` touches under the keyspace partitioning
/// `shard_of` (sorted ascending, deduplicated).  This is the shard router's
/// input: a one-element result makes the transaction a single-shard
/// candidate.  The partitioning is passed as a callable so this layer stays
/// independent of src/shard (same inversion as SchedulerGate below);
/// shard::ShardMap supplies the real one.  Like the footprint itself the
/// answer is a *prediction* — keys produced mid-transaction are invisible —
/// so the router must re-classify against the keys actually touched before
/// committing, never trust this alone.
std::vector<std::uint32_t> shards_touched(
    const KeyFootprint& footprint,
    const std::function<std::uint32_t(const ir::ObjectKey&)>& shard_of);

/// How a transaction attempt (or the whole transaction) ended, as the
/// executor reports it to the gate.  kLeaseExpired is kBusy's stronger
/// cousin: a full two-phase commit died to a reclaimed prepare lease.
enum class TxOutcome {
  kCommitted,
  kValidation,
  kBusy,
  kUnavailable,
  kLeaseExpired,
};

/// The TxOutcome a TxAbort reports to the gate.  Shared by every execution
/// path that feeds the scheduler (the single-shard Executor and the
/// cross-shard Client), so 2PC aborts classify identically to local ones.
TxOutcome outcome_of(const dtm::TxAbort& abort) noexcept;

/// What one Executor::run call tells the scheduler.  Implementations must
/// be thread-compatible per session: the executor owns one gate per client
/// thread and calls it strictly admit → on_full_abort* → finish.
class SchedulerGate {
 public:
  virtual ~SchedulerGate() = default;

  /// Declare the predicted footprint and block until the transaction may
  /// start (admission window has room, hot-key queue tickets acquired).
  virtual void admit(const KeyFootprint& footprint) = 0;

  /// One full abort inside the executor's retry loop: `conflict` lists the
  /// invalidated keys when known (empty for busy/unavailable aborts).  The
  /// transaction keeps its admission slot and tickets for the retry.
  virtual void on_full_abort(TxOutcome kind,
                             const std::vector<ir::ObjectKey>& conflict) = 0;

  /// The run ended (commit, or the final abort re-thrown to the caller);
  /// releases tickets and the admission slot.  Must tolerate being called
  /// without a preceding admit (it is then a no-op).
  virtual void finish(TxOutcome outcome) = 0;

  /// Whether any footprint entry is currently hot, per the gate's
  /// contention view.  Advisory (must not block): the sharded client uses
  /// it to route hot-footprint transactions to the deterministic epoch
  /// lane in hybrid mode.  The default — nothing is ever hot — keeps
  /// gate-less and test gates routing everything optimistically.
  virtual bool any_hot(const KeyFootprint& footprint) const {
    (void)footprint;
    return false;
  }
};

}  // namespace acn
