#include "src/acn/unitgraph.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>

namespace acn {
namespace {

/// Dependency scanner over program variables.
/// RAW: op reads a var last written by an earlier op.
/// WAR: op writes a var read since its last write.
/// WAW: op writes a var another op wrote.
struct DepScan {
  std::vector<std::vector<std::size_t>> raw;
  std::vector<std::vector<std::size_t>> all;

  explicit DepScan(const ir::TxProgram& program) {
    const std::size_t n = program.ops.size();
    raw.resize(n);
    all.resize(n);
    std::vector<std::size_t> last_writer(program.n_vars, kNoUnit);
    std::vector<std::vector<std::size_t>> readers(program.n_vars);

    auto add = [](std::vector<std::size_t>& into, std::size_t dep) {
      if (std::find(into.begin(), into.end(), dep) == into.end())
        into.push_back(dep);
    };

    for (std::size_t i = 0; i < n; ++i) {
      const auto& op = program.ops[i];
      for (ir::VarId v : op.reads()) {
        if (v >= program.n_vars) throw std::out_of_range("op reads bad var");
        if (last_writer[v] != kNoUnit) {
          add(raw[i], last_writer[v]);
          add(all[i], last_writer[v]);
        }
        readers[v].push_back(i);
      }
      for (ir::VarId v : op.writes()) {
        if (v >= program.n_vars) throw std::out_of_range("op writes bad var");
        for (std::size_t r : readers[v])
          if (r != i) add(all[i], r);  // WAR
        if (last_writer[v] != kNoUnit && last_writer[v] != i)
          add(all[i], last_writer[v]);  // WAW
        last_writer[v] = i;
        readers[v].clear();
      }
    }
    for (auto& deps : raw) std::sort(deps.begin(), deps.end());
    for (auto& deps : all) std::sort(deps.begin(), deps.end());
  }
};

/// Mutable unit graph used during attachment.  Unit ids are stable; merged
/// units become empty shells redirected via `alias`.
struct Builder {
  struct Unit {
    std::vector<std::size_t> ops;
    std::vector<std::size_t> remote_ops;
    bool dead = false;
  };

  std::vector<Unit> units;
  std::vector<std::set<std::size_t>> succ;
  std::vector<std::size_t> unit_of_op;
  std::size_t forced_merges = 0;

  std::size_t add_unit(std::size_t remote_op) {
    units.push_back({{remote_op}, {remote_op}, false});
    succ.emplace_back();
    return units.size() - 1;
  }

  bool reaches(std::size_t from, std::size_t to) const {
    if (from == to) return true;
    std::vector<std::size_t> stack{from};
    std::vector<bool> seen(units.size(), false);
    seen[from] = true;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      for (std::size_t v : succ[u]) {
        if (v == to) return true;
        if (!seen[v]) {
          seen[v] = true;
          stack.push_back(v);
        }
      }
    }
    return false;
  }

  void add_edge(std::size_t from, std::size_t to) {
    if (from != to) succ[from].insert(to);
  }

  /// Merge unit `b` into `a` (edges redirected, `b` emptied).
  void merge_into(std::size_t a, std::size_t b) {
    if (a == b) return;
    ++forced_merges;
    auto& ua = units[a];
    auto& ub = units[b];
    ua.ops.insert(ua.ops.end(), ub.ops.begin(), ub.ops.end());
    ua.remote_ops.insert(ua.remote_ops.end(), ub.remote_ops.begin(),
                         ub.remote_ops.end());
    for (std::size_t op : ub.ops) unit_of_op[op] = a;
    ub.ops.clear();
    ub.remote_ops.clear();
    ub.dead = true;
    for (std::size_t v : succ[b]) add_edge(a, v);
    succ[b].clear();
    for (std::size_t u = 0; u < units.size(); ++u) {
      if (succ[u].erase(b) > 0) add_edge(u, a);
    }
    succ[a].erase(a);
  }

  /// Position of a unit in source order (max op index of its accesses).
  std::size_t position(std::size_t u) const {
    std::size_t best = 0;
    for (std::size_t op : units[u].remote_ops) best = std::max(best, op);
    if (units[u].remote_ops.empty())
      for (std::size_t op : units[u].ops) best = std::max(best, op);
    return best;
  }
};

double unit_level(const Builder& b, std::size_t u, const ir::TxProgram& program,
                  const ClassLevels& levels) {
  double best = 0.0;
  for (std::size_t op : b.units[u].remote_ops) {
    const auto it = levels.find(program.ops[op].remote.cls);
    if (it != levels.end()) best = std::max(best, it->second);
  }
  return best;
}

}  // namespace

std::vector<std::vector<std::size_t>> op_dependencies(
    const ir::TxProgram& program) {
  return DepScan(program).all;
}

std::vector<std::vector<std::size_t>> op_dataflow(const ir::TxProgram& program) {
  return DepScan(program).raw;
}

bool DependencyModel::depends(std::size_t pred, std::size_t succ) const {
  const auto& out = succs[pred];
  return std::find(out.begin(), out.end(), succ) != out.end();
}

bool DependencyModel::order_valid(const std::vector<std::size_t>& order) const {
  if (order.size() != units.size()) return false;
  std::vector<std::size_t> pos(units.size(), kNoUnit);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= units.size() || pos[order[i]] != kNoUnit) return false;
    pos[order[i]] = i;
  }
  for (std::size_t u = 0; u < units.size(); ++u)
    for (std::size_t v : succs[u])
      if (pos[u] >= pos[v]) return false;
  return true;
}

std::string DependencyModel::describe() const {
  std::string out;
  for (std::size_t u = 0; u < units.size(); ++u) {
    out += "U" + std::to_string(u) + " {";
    for (std::size_t i = 0; i < units[u].ops.size(); ++i) {
      const std::size_t op = units[u].ops[i];
      if (i) out += ", ";
      out += std::to_string(op);
      if (!program->ops[op].label.empty()) out += ":" + program->ops[op].label;
    }
    out += "}";
    if (!preds[u].empty()) {
      out += " after {";
      for (std::size_t i = 0; i < preds[u].size(); ++i) {
        if (i) out += ", ";
        out += "U" + std::to_string(preds[u][i]);
      }
      out += "}";
    }
    out += "\n";
  }
  return out;
}

std::string DependencyModel::to_dot(const std::string& graph_name) const {
  std::string out = "digraph " + graph_name + " {\n  rankdir=LR;\n"
                    "  node [shape=box, fontname=\"monospace\"];\n";
  for (std::size_t u = 0; u < units.size(); ++u) {
    out += "  U" + std::to_string(u) + " [label=\"U" + std::to_string(u);
    for (std::size_t op : units[u].ops) {
      out += "\\n" + std::to_string(op);
      const auto& label = program->ops[op].label;
      if (!label.empty()) out += ": " + label;
    }
    out += "\"];\n";
  }
  for (std::size_t u = 0; u < units.size(); ++u)
    for (std::size_t v : succs[u])
      out += "  U" + std::to_string(u) + " -> U" + std::to_string(v) + ";\n";
  out += "}\n";
  return out;
}

DependencyModel build_dependency_model(const ir::TxProgram& program,
                                       AttachPolicy policy,
                                       const ClassLevels& class_levels) {
  if (program.remote_op_count() == 0)
    throw std::invalid_argument("build_dependency_model: program '" +
                                program.name + "' has no remote access");
  const DepScan deps(program);
  const std::size_t n_ops = program.ops.size();

  // Op-level successors (needed when attaching deferred ops).
  std::vector<std::vector<std::size_t>> op_succs(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i)
    for (std::size_t p : deps.all[i]) op_succs[p].push_back(i);
  std::vector<std::vector<std::size_t>> raw_succs(n_ops);
  for (std::size_t i = 0; i < n_ops; ++i)
    for (std::size_t p : deps.raw[i]) raw_succs[p].push_back(i);

  Builder b;
  b.unit_of_op.assign(n_ops, kNoUnit);

  // Units for remote accesses exist up front.
  for (std::size_t i = 0; i < n_ops; ++i)
    if (program.ops[i].is_remote()) b.unit_of_op[i] = b.add_unit(i);

  auto attached_units_of = [&](const std::vector<std::size_t>& op_list) {
    std::vector<std::size_t> out;
    for (std::size_t op : op_list) {
      const std::size_t u = b.unit_of_op[op];
      if (u != kNoUnit && std::find(out.begin(), out.end(), u) == out.end())
        out.push_back(u);
    }
    return out;
  };

  auto rank_candidates = [&](std::vector<std::size_t> cands) {
    std::stable_sort(cands.begin(), cands.end(), [&](std::size_t x, std::size_t y) {
      if (policy == AttachPolicy::kMostContended) {
        const double lx = unit_level(b, x, program, class_levels);
        const double ly = unit_level(b, y, program, class_levels);
        if (lx != ly) return lx > ly;
      }
      return b.position(x) > b.position(y);  // latest first
    });
    return cands;
  };

  // Can op `i` live in unit `c`?  All pred-unit -> c and c -> succ-unit
  // edges must keep the graph acyclic.
  auto fits = [&](std::size_t c, const std::vector<std::size_t>& pred_units,
                  const std::vector<std::size_t>& succ_units) {
    for (std::size_t p : pred_units)
      if (p != c && b.reaches(c, p)) return false;
    for (std::size_t s : succ_units)
      if (s != c && b.reaches(s, c)) return false;
    return true;
  };

  auto attach = [&](std::size_t i, std::size_t c,
                    const std::vector<std::size_t>& pred_units,
                    const std::vector<std::size_t>& succ_units) {
    b.unit_of_op[i] = c;
    b.units[c].ops.push_back(i);
    for (std::size_t p : pred_units) b.add_edge(p, c);
    for (std::size_t s : succ_units) b.add_edge(c, s);
  };

  // Forced resolution: merge every conflicting unit into the preferred one.
  auto attach_forced = [&](std::size_t i, std::size_t c,
                           std::vector<std::size_t> pred_units,
                           std::vector<std::size_t> succ_units) {
    for (std::size_t p : pred_units)
      if (p != c && b.reaches(c, p)) b.merge_into(c, p);
    for (std::size_t s : succ_units)
      if (s != c && b.reaches(s, c)) b.merge_into(c, s);
    // Merged units may have been aliased away; recompute the survivors.
    auto live = [&](std::vector<std::size_t>& v) {
      std::vector<std::size_t> out;
      for (std::size_t u : v)
        if (!b.units[u].dead && u != c) out.push_back(u);
      v = out;
    };
    live(pred_units);
    live(succ_units);
    attach(i, c, pred_units, succ_units);
  };

  std::vector<std::size_t> deferred;

  // Pass 1: ascending; locals attach to a producer's unit.
  for (std::size_t i = 0; i < n_ops; ++i) {
    const std::size_t pre_assigned = b.unit_of_op[i];
    const auto pred_units = attached_units_of(deps.all[i]);
    if (pre_assigned != kNoUnit) {  // remote op: unit exists, just wire edges
      for (std::size_t p : pred_units) b.add_edge(p, pre_assigned);
      continue;
    }
    const auto cand_source = attached_units_of(deps.raw[i]);
    if (cand_source.empty()) {
      deferred.push_back(i);
      continue;
    }
    const auto cands = rank_candidates(cand_source);
    bool placed = false;
    for (std::size_t c : cands) {
      if (fits(c, pred_units, {})) {
        attach(i, c, pred_units, {});
        placed = true;
        break;
      }
    }
    if (!placed) attach_forced(i, cands.front(), pred_units, {});
  }

  // Pass 2: deferred ops (no attached data-flow producer), descending so a
  // deferred consumer is placed before its deferred producer needs it.
  for (auto it = deferred.rbegin(); it != deferred.rend(); ++it) {
    const std::size_t i = *it;
    const auto pred_units = attached_units_of(deps.all[i]);
    auto succ_units = attached_units_of(op_succs[i]);
    auto consumer_units = attached_units_of(raw_succs[i]);

    std::vector<std::size_t> cands;
    if (!consumer_units.empty()) {
      cands = consumer_units;  // earliest consumer first
      std::stable_sort(cands.begin(), cands.end(),
                       [&](std::size_t x, std::size_t y) {
                         return b.position(x) < b.position(y);
                       });
    } else {
      // No data-flow consumer (e.g. a blind insert built from params):
      // execute as late as possible, near the commit phase.
      std::size_t last = kNoUnit;
      for (std::size_t u = 0; u < b.units.size(); ++u) {
        if (b.units[u].dead) continue;
        if (last == kNoUnit || b.position(u) > b.position(last)) last = u;
      }
      cands.push_back(last);
    }

    bool placed = false;
    for (std::size_t c : cands) {
      if (fits(c, pred_units, succ_units)) {
        attach(i, c, pred_units, succ_units);
        placed = true;
        break;
      }
    }
    if (!placed) attach_forced(i, cands.front(), pred_units, succ_units);
  }

  // Canonical order: Kahn's algorithm, ties by earliest access position.
  std::vector<std::size_t> live_units;
  for (std::size_t u = 0; u < b.units.size(); ++u)
    if (!b.units[u].dead) live_units.push_back(u);

  std::vector<std::size_t> indegree(b.units.size(), 0);
  for (std::size_t u : live_units)
    for (std::size_t v : b.succ[u]) ++indegree[v];

  auto cmp = [&](std::size_t x, std::size_t y) {
    return b.position(x) > b.position(y);  // min-heap by position
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>, decltype(cmp)> ready(
      cmp);
  for (std::size_t u : live_units)
    if (indegree[u] == 0) ready.push(u);

  std::vector<std::size_t> topo;
  while (!ready.empty()) {
    const std::size_t u = ready.top();
    ready.pop();
    topo.push_back(u);
    for (std::size_t v : b.succ[u])
      if (--indegree[v] == 0) ready.push(v);
  }
  if (topo.size() != live_units.size())
    throw std::logic_error("unit graph has a cycle after attachment");

  // Emit the model with remapped indices.
  DependencyModel model;
  model.program = &program;
  model.forced_merges = b.forced_merges;
  std::vector<std::size_t> new_index(b.units.size(), kNoUnit);
  for (std::size_t rank = 0; rank < topo.size(); ++rank)
    new_index[topo[rank]] = rank;

  model.units.resize(topo.size());
  model.preds.resize(topo.size());
  model.succs.resize(topo.size());
  model.unit_of_op.assign(n_ops, kNoUnit);

  for (std::size_t rank = 0; rank < topo.size(); ++rank) {
    const std::size_t u = topo[rank];
    UnitBlock& unit = model.units[rank];
    unit.ops = b.units[u].ops;
    std::sort(unit.ops.begin(), unit.ops.end());
    unit.remote_ops = b.units[u].remote_ops;
    std::sort(unit.remote_ops.begin(), unit.remote_ops.end());
    for (std::size_t op : unit.remote_ops)
      unit.classes.push_back(program.ops[op].remote.cls);
    for (std::size_t op : unit.ops) model.unit_of_op[op] = rank;
    for (std::size_t v : b.succ[u]) model.succs[rank].push_back(new_index[v]);
    std::sort(model.succs[rank].begin(), model.succs[rank].end());
  }
  for (std::size_t u = 0; u < model.units.size(); ++u)
    for (std::size_t v : model.succs[u]) model.preds[v].push_back(u);
  for (auto& p : model.preds) std::sort(p.begin(), p.end());

  return model;
}

}  // namespace acn
