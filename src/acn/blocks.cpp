#include "src/acn/blocks.hpp"

#include <algorithm>

namespace acn {

BlockSequence initial_sequence(const DependencyModel& model) {
  BlockSequence seq;
  seq.reserve(model.units.size());
  for (std::size_t u = 0; u < model.units.size(); ++u) seq.push_back({{u}});
  return seq;
}

BlockSequence single_block(const DependencyModel& model) {
  Block all;
  for (std::size_t u = 0; u < model.units.size(); ++u) all.units.push_back(u);
  return {all};
}

bool sequence_valid(const BlockSequence& sequence, const DependencyModel& model) {
  std::vector<std::size_t> block_of(model.units.size(), kNoUnit);
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    for (std::size_t u : sequence[i].units) {
      if (u >= model.units.size() || block_of[u] != kNoUnit) return false;
      block_of[u] = i;
    }
  }
  for (std::size_t u = 0; u < model.units.size(); ++u) {
    if (block_of[u] == kNoUnit) return false;
    for (std::size_t v : model.succs[u])
      if (block_of[u] > block_of[v]) return false;
  }
  return true;
}

std::vector<std::size_t> block_ops(const Block& block,
                                   const DependencyModel& model) {
  std::vector<std::size_t> ops;
  for (std::size_t u : block.units)
    ops.insert(ops.end(), model.units[u].ops.begin(), model.units[u].ops.end());
  std::sort(ops.begin(), ops.end());
  return ops;
}

std::vector<std::size_t> batchable_remote_ops(
    const ir::TxProgram& program, const std::vector<std::size_t>& window,
    const std::vector<std::size_t>& prior) {
  // written[v]: var v is produced inside the prior ops or earlier in the
  // window, so a key depending on it is not known at window entry.  The
  // bounds guard also filters ir::kNoVar outputs.
  std::vector<char> written(program.n_vars, 0);
  const auto mark = [&](std::size_t idx) {
    for (ir::VarId w : program.ops[idx].writes())
      if (w < written.size()) written[w] = 1;
  };
  for (std::size_t idx : prior) mark(idx);

  std::vector<std::size_t> group;
  for (std::size_t idx : window) {
    const ir::Op& op = program.ops[idx];
    if (op.is_remote()) {
      const auto& deps = op.remote.key_deps;
      const bool ready = std::none_of(deps.begin(), deps.end(), [&](ir::VarId dep) {
        return dep < written.size() && written[dep];
      });
      if (ready) group.push_back(idx);
    }
    mark(idx);
  }
  return group;
}

bool blocks_dependent(const Block& a, const Block& b,
                      const DependencyModel& model) {
  for (std::size_t u : a.units)
    for (std::size_t v : b.units)
      if (model.depends(u, v) || model.depends(v, u)) return true;
  return false;
}

std::string describe_sequence(const BlockSequence& sequence,
                              const DependencyModel& model) {
  std::string out;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    out += "B" + std::to_string(i) + " = [";
    for (std::size_t j = 0; j < sequence[i].units.size(); ++j) {
      if (j) out += " ";
      out += "U" + std::to_string(sequence[i].units[j]);
    }
    out += "] ops:";
    for (std::size_t op : block_ops(sequence[i], model)) {
      out += " " + std::to_string(op);
      const auto& label = model.program->ops[op].label;
      if (!label.empty()) out += "(" + label + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace acn
