// Executor Engine (Section V-B): runs a TxProgram to commit under one of
// the protocols the paper evaluates, behind a single entry point:
//
//   executor.run(protocol, options, params, stats)
//
//   * Protocol::kFlat       — QR-DTM: all operations in the parent context;
//                             any conflict restarts the whole transaction.
//   * Protocol::kManualCN   — QR-CN: a fixed Block Sequence (the
//                             programmer's manual decomposition); each Block
//                             executes as a closed-nested transaction,
//                             partial aborts retry the Block only.
//   * Protocol::kAcn        — QR-ACN: like kManualCN, but the sequence comes
//                             from the AdaptiveController at every attempt,
//                             so the transaction always runs the most recent
//                             composition.
//   * Protocol::kCheckpoint — QR-CKPT: checkpoint-based partial rollback
//                             (the Section III alternative to nesting).
//
// RunOptions also switches on the batched read pipeline: with batch_reads,
// the remote accesses of a Block whose key dependencies are satisfied at
// Block entry are fetched through ONE read_many quorum round instead of N
// sequential reads; with prefetch, the next Block's independent reads ride
// the same round speculatively and are adopted when that Block starts (or
// discarded, if a partial abort intervenes — speculation never weakens the
// partial-rollback classification, because adopted reads live in the
// adopting Block's own frame).
//
// Partial rollback mechanics: before a Block starts, the executor snapshots
// the variable environment; a partial abort pops the nested frame (discarding
// the Block's read/write-set entries), restores the snapshot and re-executes
// just that Block.  An abort touching merged history escalates to a full
// restart with randomized exponential backoff.
#pragma once

#include <chrono>
#include <cstdint>

#include "src/acn/controller.hpp"
#include "src/acn/footprint.hpp"
#include "src/acn/txir.hpp"

namespace acn {

/// The execution protocols under evaluation (Figure 4's series).
enum class Protocol {
  kFlat,        // QR-DTM
  kManualCN,    // QR-CN
  kAcn,         // QR-ACN
  kCheckpoint,  // QR-CKPT: fine-grained checkpoint partial rollback
};

const char* protocol_name(Protocol protocol);

struct ExecStats {
  std::uint64_t commits = 0;
  std::uint64_t full_aborts = 0;
  std::uint64_t partial_aborts = 0;
  std::uint64_t ops_executed = 0;
  std::uint64_t blocks_executed = 0;
  // Abort breakdown (full + partial):
  std::uint64_t aborts_at_commit = 0;    // raised by the final 2PC
  std::uint64_t aborts_in_execution = 0; // raised by a read mid-transaction
  std::uint64_t aborts_busy = 0;         // kind == kBusy (protect conflicts)
  // Checkpointing executor:
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_restores = 0;

  /// Where in the Block Sequence aborts surface (position clamped to the
  /// last slot).  Under a well-adapted plan the partial aborts concentrate
  /// in the final (hottest) block — the signature of Section III's
  /// code-repositioning argument.
  static constexpr std::size_t kPositionSlots = 12;
  std::uint64_t partials_at_position[kPositionSlots] = {};
  std::uint64_t fulls_at_position[kPositionSlots] = {};

  void merge(const ExecStats& other) noexcept {
    commits += other.commits;
    full_aborts += other.full_aborts;
    partial_aborts += other.partial_aborts;
    ops_executed += other.ops_executed;
    blocks_executed += other.blocks_executed;
    aborts_at_commit += other.aborts_at_commit;
    aborts_in_execution += other.aborts_in_execution;
    aborts_busy += other.aborts_busy;
    checkpoints_taken += other.checkpoints_taken;
    checkpoint_restores += other.checkpoint_restores;
    for (std::size_t i = 0; i < kPositionSlots; ++i) {
      partials_at_position[i] += other.partials_at_position[i];
      fulls_at_position[i] += other.fulls_at_position[i];
    }
  }
};

struct ExecutorConfig {
  /// Partial retries of one Block before escalating to a full restart.
  int max_partial_retries = 64;
  /// Full restarts before giving up (throwing the last TxAbort).
  int max_full_retries = 1 << 20;
  /// Base of the randomized exponential backoff after a full abort.
  std::chrono::nanoseconds backoff_base{std::chrono::microseconds{20}};
  /// When set, every remote read piggybacks a contention query for the
  /// monitor's classes and feeds the reply into it (Section V-C2's
  /// "meta-data coupled with existing network messages").  The monitor
  /// must outlive the executor; it is thread-safe and may be shared.
  ContentionMonitor* piggyback_monitor = nullptr;
  /// When set, committed transactions are appended here for offline
  /// serializability checking (nesting::check_serializable).
  nesting::HistoryLog* history = nullptr;
  /// When set, sharded clients log every multi-group 2PC decision here for
  /// offline cross-shard atomicity checking
  /// (nesting::check_cross_shard_atomicity).  Single-group executors
  /// ignore it.
  nesting::CrossShardLog* cross_log = nullptr;
  /// When set, the executor records tx/Block trace spans and the
  /// commit/abort counters (split partial vs full, by reason code), and
  /// arms the transaction + stub-level instrumentation.  Null = off.
  obs::Observability* obs = nullptr;
};

/// Inputs of one run() call.  Which fields are required depends on the
/// protocol: program for kFlat/kCheckpoint; program+model+sequence for
/// kManualCN; controller for kAcn (see the with_* builders below).  The
/// rest are cross-protocol toggles.
struct RunOptions {
  const ir::TxProgram* program = nullptr;
  const DependencyModel* model = nullptr;
  const BlockSequence* sequence = nullptr;
  AdaptiveController* controller = nullptr;
  /// Fetch a Block's independent remote reads through one batched quorum
  /// round (kManualCN/kAcn; flat and checkpointed execution has no Block
  /// structure to exploit and ignores it).
  bool batch_reads = false;
  /// With batch_reads: speculatively fetch the next Block's independent
  /// reads in the same round; speculation is discarded on partial abort.
  bool prefetch = false;
  /// When set, replaces the executor's construction-time config (retry
  /// caps, backoff, obs pointer, monitor, history) for this run only.
  const ExecutorConfig* config_override = nullptr;
  /// When set, the run is gated through the contention-aware scheduler:
  /// admit(predicted_footprint) before the first attempt, on_full_abort on
  /// every full abort, finish when the run ends either way.  The gate is
  /// typically one sched::TxScheduler::Session per client thread.
  SchedulerGate* scheduler = nullptr;
};

// RunOptions builders for the common protocol shapes.  The caller keeps the
// referenced program/model/sequence/controller alive for the run:
//
//   executor.run(Protocol::kFlat, with_program(program), params, stats);
//   executor.run(Protocol::kManualCN,
//                with_blocks(program, model, sequence), params, stats);
//   executor.run(Protocol::kAcn, with_controller(controller), params, stats);

/// kFlat / kCheckpoint inputs (both execute the raw program).
inline RunOptions with_program(const ir::TxProgram& program) {
  RunOptions options;
  options.program = &program;
  return options;
}

/// kManualCN inputs: a fixed decomposition (`sequence` valid for `model`).
inline RunOptions with_blocks(const ir::TxProgram& program,
                              const DependencyModel& model,
                              const BlockSequence& sequence) {
  RunOptions options;
  options.program = &program;
  options.model = &model;
  options.sequence = &sequence;
  return options;
}

/// kAcn inputs: the sequence comes from the controller at every attempt.
inline RunOptions with_controller(AdaptiveController& controller) {
  RunOptions options;
  options.controller = &controller;
  return options;
}

class Executor {
 public:
  Executor(dtm::QuorumStub& stub, ExecutorConfig config, std::uint64_t seed);

  /// Unified entry point: execute one transaction to commit under
  /// `protocol`.  Throws std::invalid_argument when `options` lacks the
  /// protocol's inputs, and the last dtm::TxAbort when max_full_retries is
  /// exhausted.
  void run(Protocol protocol, const RunOptions& options,
           const std::vector<ir::Record>& params, ExecStats& stats);

 private:
  using SpecBuffer = std::vector<std::pair<ir::ObjectKey, dtm::VersionedRecord>>;

  void run_flat_impl(const ir::TxProgram& program,
                     const std::vector<ir::Record>& params, ExecStats& stats);
  void run_blocks_impl(const ir::TxProgram& program,
                       const DependencyModel& model,
                       const BlockSequence& sequence, const RunOptions& options,
                       const std::vector<ir::Record>& params, ExecStats& stats);
  void run_checkpointed_impl(const ir::TxProgram& program,
                             const std::vector<ir::Record>& params,
                             ExecStats& stats);

  /// The batched fetch stage at Block entry: adopt what the previous Block
  /// prefetched into the fresh frame, then fetch `group` (this Block's
  /// independent reads) plus `speculative` (the next Block's) in one
  /// read_many round, leaving the speculative records in `spec_buffer`.
  void batched_fetch(const ir::TxProgram& program, ir::TxEnv& env,
                     const std::vector<std::size_t>& group,
                     const std::vector<std::size_t>& speculative,
                     SpecBuffer& spec_buffer);

  void execute_op(const ir::TxProgram& program, std::size_t op_index,
                  ir::TxEnv& env, ExecStats& stats);
  void arm_env(ir::TxEnv& env);  // history log + contention piggyback
  void backoff(int attempt);
  /// Report one full abort to obs and to the scheduler gate, if armed.
  void note_full_abort(const dtm::TxAbort& abort, std::uint64_t tx);

  dtm::QuorumStub& stub_;
  ExecutorConfig config_;
  Rng rng_;
  /// The active run's scheduler gate (null between runs / when unused).
  SchedulerGate* gate_ = nullptr;
};

}  // namespace acn
