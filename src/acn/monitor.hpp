// Dynamic Module (Section V-B / V-C2): client-side contention cache.
//
// Quorum servers maintain the windowed write counters; the monitor holds a
// client's latest view of them.  Two refresh paths exist, both from the
// paper: an explicit contention query, and levels piggybacked on read
// responses (observe()).  Levels from different replicas are reconciled by
// taking the maximum — replicas undercount, never overcount, because each
// sees only the commits of write quorums it belonged to.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/acn/algorithm_module.hpp"
#include "src/dtm/quorum_stub.hpp"

namespace acn {

class ContentionMonitor {
 public:
  explicit ContentionMonitor(std::vector<ir::ClassId> classes);

  /// Explicit query to a read quorum.  Replaces the cached window.
  void refresh(dtm::QuorumStub& stub);

  /// Merge piggybacked levels (max-reconciled into the current view).
  void observe(const std::vector<ir::ClassId>& classes,
               const std::vector<std::uint64_t>& levels);

  /// Cached windowed write counts per class.
  RawLevels raw() const;

  /// Drop the cached view (piggyback mode calls this after each adaptation
  /// tick so stale maxima do not outlive their window).
  void reset();

  std::uint64_t level(ir::ClassId cls) const;
  const std::vector<ir::ClassId>& classes() const noexcept { return classes_; }

  /// When set, refresh() records an "acn.monitor.refresh" span and each
  /// piggybacked observe() bumps its counter.
  void set_obs(obs::Observability* obs) noexcept { obs_ = obs; }

 private:
  std::vector<ir::ClassId> classes_;
  mutable std::mutex mutex_;
  RawLevels raw_;
  obs::Observability* obs_ = nullptr;
};

}  // namespace acn
