// Object identity in the DTM object space.
//
// Every shared object is identified by (class, id).  The class groups
// objects of the same kind (e.g. TPC-C District, Bank Branch); ACN's static
// analysis associates each UnitBlock with a class, and the dynamic module
// aggregates contention per class as well as per object.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace acn::store {

using ClassId = std::uint32_t;

struct ObjectKey {
  ClassId cls = 0;
  std::uint64_t id = 0;

  friend bool operator==(const ObjectKey&, const ObjectKey&) = default;
  friend auto operator<=>(const ObjectKey&, const ObjectKey&) = default;
};

inline std::string to_string(const ObjectKey& k) {
  return std::to_string(k.cls) + ":" + std::to_string(k.id);
}

struct ObjectKeyHash {
  std::size_t operator()(const ObjectKey& k) const noexcept {
    // 64-bit mix of the two fields (splitmix-style finalizer).
    std::uint64_t x = (static_cast<std::uint64_t>(k.cls) << 56) ^ k.id;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
  }
};

}  // namespace acn::store

template <>
struct std::hash<acn::store::ObjectKey> {
  std::size_t operator()(const acn::store::ObjectKey& k) const noexcept {
    return acn::store::ObjectKeyHash{}(k);
  }
};
