// Windowed write-contention tracking (the paper's Dynamic Module input,
// Section V-C2).
//
// Quorum servers count committed write operations per object.  Time is
// divided into windows; the contention level of an object is the number of
// writes it received in the *last completed* window, so levels are stable
// within a window and refresh when the window rolls.  Levels are also
// aggregated per object class, which is the granularity at which ACN's
// Algorithm Module reasons (a UnitBlock is associated with the class of the
// remote object it opens — individual keys vary per transaction execution).
// The class aggregate is the write count of the *hottest object* of the
// class, not the class total: a class with many mildly-written objects
// (TPC-C stock) must not outrank a genuine hot spot (TPC-C district).
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/store/key.hpp"

namespace acn::store {

class ContentionTracker {
 public:
  /// `window_ns` == 0 disables time-based rolling; call roll() manually
  /// (tests and deterministic harness ticks do this).  A negative width is
  /// a config error (std::invalid_argument): it would silently behave like
  /// manual mode while the caller believes windows are rolling.
  explicit ContentionTracker(std::int64_t window_ns = 0);

  /// Record one committed write on `key` at time `now_ns`.
  void on_write(const ObjectKey& key, std::uint64_t now_ns);

  /// Roll the window if `now_ns` passed the boundary (no-op otherwise).
  void maybe_roll(std::uint64_t now_ns);

  /// Force a window roll: current counters become the reported levels and
  /// counting restarts at zero.
  void roll();

  /// Writes on `key` during the last completed window.
  std::uint64_t level(const ObjectKey& key) const;

  /// Last-window writes on the hottest object of class `cls`.
  std::uint64_t class_level(ClassId cls) const;

  /// Batch lookup used to answer piggybacked contention queries.
  std::vector<std::uint64_t> class_levels(const std::vector<ClassId>& classes) const;

 private:
  void roll_locked();

  mutable std::mutex mutex_;
  std::int64_t window_ns_;
  std::uint64_t window_start_ns_ = 0;
  std::unordered_map<ObjectKey, std::uint64_t, ObjectKeyHash> current_;
  std::unordered_map<ObjectKey, std::uint64_t, ObjectKeyHash> last_;
  std::unordered_map<ClassId, std::uint64_t> current_by_class_;
  std::unordered_map<ClassId, std::uint64_t> last_by_class_;
};

}  // namespace acn::store
