// Per-replica versioned object store.
//
// Each server node holds a full replica (QR-DTM uses full replication).
// Every object carries the metadata Section IV of the paper prescribes:
//   * a version number, checked during (incremental) validation, and
//   * a "protected" flag: while a committing transaction holds it, reads
//     and competing protects fail until the commit completes.
// The store is sharded internally so concurrent clients contend only on
// unrelated shards, not on one global lock.
#pragma once

#include <array>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/store/key.hpp"
#include "src/store/record.hpp"

namespace acn::store {

using TxId = std::uint64_t;
constexpr TxId kNoTx = 0;

enum class ReadStatus {
  kOk,
  kMissing,    // object does not exist on this replica
  kProtected,  // a commit is in flight; caller should back off / abort
};

struct ReadResult {
  ReadStatus status = ReadStatus::kMissing;
  VersionedRecord record;
};

class VersionedStore {
 public:
  VersionedStore() = default;
  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  /// Unconditional install, used for initial population before traffic.
  void seed(const ObjectKey& key, Record value, Version version = 1);

  ReadResult read(const ObjectKey& key) const;

  /// Read for validation on behalf of `self`: objects protected by `self`
  /// itself (its own prepare) are readable; objects protected by another
  /// transaction report kProtected.
  ReadResult read_validating(const ObjectKey& key, TxId self) const;

  /// Current version, or nullopt when the object is absent.
  std::optional<Version> version_of(const ObjectKey& key) const;

  /// Attempt to set the protected flag on behalf of `tx`.  Fails when
  /// another transaction holds it.  Re-protecting by the same tx succeeds.
  /// A protect on a missing key creates a placeholder (version 0) so fresh
  /// inserts are also guarded through two-phase commit.
  bool try_protect(const ObjectKey& key, TxId tx);

  /// Release the flag if held by `tx` (no-op otherwise).
  void unprotect(const ObjectKey& key, TxId tx);

  /// Install `value` at `version` and release `tx`'s protection.  Versions
  /// only move forward: an older version than the replica already holds is
  /// ignored (the replica was updated by a later-intersecting quorum).
  void apply(const ObjectKey& key, const Record& value, Version version, TxId tx);

  std::size_t object_count() const;

  /// Objects currently held protected by an in-flight commit.  A clean
  /// shutdown (all transactions committed or aborted, all leases settled)
  /// leaves this at zero on every replica.
  std::size_t protected_count() const;

  /// Copy of every committed object (version-0 placeholders are skipped;
  /// protected entries report their last committed value).  Feeds the
  /// anti-entropy catch-up a rejoining replica runs against its peers.
  std::vector<std::pair<ObjectKey, VersionedRecord>> snapshot() const;

  /// Committed objects of one shard only, a consistent cut under that
  /// shard's lock.  Lets a snapshot writer walk the store shard by shard
  /// without stalling writers to the other shards.
  std::vector<std::pair<ObjectKey, VersionedRecord>> shard_snapshot(
      std::size_t shard) const;

  static constexpr std::size_t shard_count() noexcept { return kShards; }

  /// Drop every object and protection.  Models a replica losing its
  /// volatile memory in a crash; what survives comes back through
  /// recovery (durable log + snapshot) and peer catch-up.
  void clear();

 private:
  struct Entry {
    Record value;
    Version version = 0;
    TxId protected_by = kNoTx;
  };

  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<ObjectKey, Entry, ObjectKeyHash> map;
  };

  Shard& shard_for(const ObjectKey& key) {
    return shards_[ObjectKeyHash{}(key) % kShards];
  }
  const Shard& shard_for(const ObjectKey& key) const {
    return shards_[ObjectKeyHash{}(key) % kShards];
  }

  std::array<Shard, kShards> shards_;
};

}  // namespace acn::store
