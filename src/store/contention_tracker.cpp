#include "src/store/contention_tracker.hpp"

#include <algorithm>
#include <stdexcept>

namespace acn::store {

ContentionTracker::ContentionTracker(std::int64_t window_ns)
    : window_ns_(window_ns) {
  if (window_ns < 0)
    throw std::invalid_argument(
        "ContentionTracker: negative window width (use 0 for manual rolling)");
}

void ContentionTracker::on_write(const ObjectKey& key, std::uint64_t now_ns) {
  std::lock_guard lock(mutex_);
  if (window_ns_ > 0) {
    if (window_start_ns_ == 0) window_start_ns_ = now_ns;
    if (now_ns - window_start_ns_ >= static_cast<std::uint64_t>(window_ns_)) {
      roll_locked();
      window_start_ns_ = now_ns;
    }
  }
  const std::uint64_t count = ++current_[key];
  auto& class_max = current_by_class_[key.cls];
  class_max = std::max(class_max, count);
}

void ContentionTracker::maybe_roll(std::uint64_t now_ns) {
  std::lock_guard lock(mutex_);
  if (window_ns_ <= 0) return;
  if (window_start_ns_ == 0) {
    window_start_ns_ = now_ns;
    return;
  }
  if (now_ns - window_start_ns_ >= static_cast<std::uint64_t>(window_ns_)) {
    roll_locked();
    window_start_ns_ = now_ns;
  }
}

void ContentionTracker::roll() {
  std::lock_guard lock(mutex_);
  roll_locked();
}

void ContentionTracker::roll_locked() {
  last_ = std::move(current_);
  current_.clear();
  last_by_class_ = std::move(current_by_class_);
  current_by_class_.clear();
}

std::uint64_t ContentionTracker::level(const ObjectKey& key) const {
  std::lock_guard lock(mutex_);
  const auto it = last_.find(key);
  return it == last_.end() ? 0 : it->second;
}

std::uint64_t ContentionTracker::class_level(ClassId cls) const {
  std::lock_guard lock(mutex_);
  const auto it = last_by_class_.find(cls);
  return it == last_by_class_.end() ? 0 : it->second;
}

std::vector<std::uint64_t> ContentionTracker::class_levels(
    const std::vector<ClassId>& classes) const {
  std::lock_guard lock(mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(classes.size());
  for (ClassId cls : classes) {
    const auto it = last_by_class_.find(cls);
    out.push_back(it == last_by_class_.end() ? 0 : it->second);
  }
  return out;
}

}  // namespace acn::store
