#include "src/store/versioned_store.hpp"

namespace acn::store {

void VersionedStore::seed(const ObjectKey& key, Record value, Version version) {
  auto& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  auto& entry = shard.map[key];
  entry.value = std::move(value);
  entry.version = version;
  entry.protected_by = kNoTx;
}

ReadResult VersionedStore::read(const ObjectKey& key) const {
  const auto& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return {ReadStatus::kMissing, {}};
  if (it->second.protected_by != kNoTx) return {ReadStatus::kProtected, {}};
  if (it->second.version == 0) return {ReadStatus::kMissing, {}};
  return {ReadStatus::kOk, {it->second.value, it->second.version}};
}

ReadResult VersionedStore::read_validating(const ObjectKey& key, TxId self) const {
  const auto& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return {ReadStatus::kMissing, {}};
  if (it->second.protected_by != kNoTx && it->second.protected_by != self) {
    // Still expose the last committed version: a validator can refute a
    // stale check definitively even while a commit is in flight.
    return {ReadStatus::kProtected, {{}, it->second.version}};
  }
  if (it->second.version == 0) return {ReadStatus::kMissing, {}};
  return {ReadStatus::kOk, {it->second.value, it->second.version}};
}

std::optional<Version> VersionedStore::version_of(const ObjectKey& key) const {
  const auto& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.version == 0) return std::nullopt;
  return it->second.version;
}

bool VersionedStore::try_protect(const ObjectKey& key, TxId tx) {
  auto& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  auto& entry = shard.map[key];  // creates placeholder for fresh inserts
  if (entry.protected_by != kNoTx && entry.protected_by != tx) return false;
  entry.protected_by = tx;
  return true;
}

void VersionedStore::unprotect(const ObjectKey& key, TxId tx) {
  auto& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return;
  if (it->second.protected_by == tx) it->second.protected_by = kNoTx;
  // Erase placeholders created by a protect that never committed.
  if (it->second.version == 0 && it->second.protected_by == kNoTx)
    shard.map.erase(it);
}

void VersionedStore::apply(const ObjectKey& key, const Record& value,
                           Version version, TxId tx) {
  auto& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  auto& entry = shard.map[key];
  if (version > entry.version) {
    entry.value = value;
    entry.version = version;
  }
  if (entry.protected_by == tx) entry.protected_by = kNoTx;
}

std::size_t VersionedStore::object_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

std::size_t VersionedStore::protected_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, entry] : shard.map)
      if (entry.protected_by != kNoTx) ++total;
  }
  return total;
}

std::vector<std::pair<ObjectKey, VersionedRecord>> VersionedStore::snapshot()
    const {
  std::vector<std::pair<ObjectKey, VersionedRecord>> out;
  out.reserve(object_count());
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    for (const auto& [key, entry] : shard.map) {
      if (entry.version == 0) continue;  // uncommitted placeholder
      out.emplace_back(key, VersionedRecord{entry.value, entry.version});
    }
  }
  return out;
}

std::vector<std::pair<ObjectKey, VersionedRecord>>
VersionedStore::shard_snapshot(std::size_t shard) const {
  std::vector<std::pair<ObjectKey, VersionedRecord>> out;
  const auto& s = shards_[shard % kShards];
  std::lock_guard lock(s.mutex);
  out.reserve(s.map.size());
  for (const auto& [key, entry] : s.map) {
    if (entry.version == 0) continue;  // uncommitted placeholder
    out.emplace_back(key, VersionedRecord{entry.value, entry.version});
  }
  return out;
}

void VersionedStore::clear() {
  for (auto& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    shard.map.clear();
  }
}

}  // namespace acn::store
