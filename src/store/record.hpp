// Object payloads.
//
// Shared objects are flat records of signed 64-bit fields — sufficient for
// the Bank, Vacation and TPC-C schemas (balances, counters, quantities,
// foreign keys).  Fixed-size numeric records keep the simulated wire size
// honest and make deep copies cheap, which the closed-nesting runtime
// relies on when it snapshots and restores execution state.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

namespace acn::store {

using Field = std::int64_t;

struct Record {
  std::vector<Field> fields;

  Record() = default;
  explicit Record(std::size_t n_fields, Field init = 0) : fields(n_fields, init) {}
  Record(std::initializer_list<Field> init) : fields(init) {}

  Field& operator[](std::size_t i) { return fields[i]; }
  Field operator[](std::size_t i) const { return fields[i]; }
  std::size_t size() const noexcept { return fields.size(); }

  /// Approximate serialized size on the simulated wire.
  std::size_t approx_size() const noexcept {
    return fields.size() * sizeof(Field) + sizeof(std::uint32_t);
  }

  friend bool operator==(const Record&, const Record&) = default;
};

using Version = std::uint64_t;

/// A versioned snapshot returned by reads.
struct VersionedRecord {
  Record value;
  Version version = 0;

  friend bool operator==(const VersionedRecord&, const VersionedRecord&) =
      default;
};

}  // namespace acn::store
