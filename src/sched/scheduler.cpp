#include "src/sched/scheduler.hpp"

#include <algorithm>

#include "src/common/clock.hpp"

namespace acn::sched {

const char* policy_name(SchedulerPolicy policy) noexcept {
  switch (policy) {
    case SchedulerPolicy::kNone:
      return "none";
    case SchedulerPolicy::kQueue:
      return "queue";
    case SchedulerPolicy::kAdmit:
      return "admit";
    case SchedulerPolicy::kBoth:
      return "both";
  }
  return "?";
}

std::optional<SchedulerPolicy> parse_policy(std::string_view text) noexcept {
  if (text == "none") return SchedulerPolicy::kNone;
  if (text == "queue") return SchedulerPolicy::kQueue;
  if (text == "admit") return SchedulerPolicy::kAdmit;
  if (text == "both") return SchedulerPolicy::kBoth;
  return std::nullopt;
}

namespace {

bool uses_admission(SchedulerPolicy policy) noexcept {
  return policy == SchedulerPolicy::kAdmit || policy == SchedulerPolicy::kBoth;
}

bool uses_queues(SchedulerPolicy policy) noexcept {
  return policy == SchedulerPolicy::kQueue || policy == SchedulerPolicy::kBoth;
}

}  // namespace

TxScheduler::TxScheduler(SchedulerConfig config, std::size_t n_clients,
                         std::uint64_t seed, obs::Observability* obs)
    : config_(config), obs_(obs) {
  sessions_.reserve(n_clients);
  for (std::size_t i = 0; i < n_clients; ++i) {
    auto session = std::make_unique<Session>();
    session->owner_ = this;
    session->index_ = i;
    session->rng_.reseed(seed * 0x9e3779b97f4a7c15ULL + i + 1);
    session->window_ = std::clamp(config_.initial_window, config_.min_window,
                                  config_.max_window);
    sessions_.push_back(std::move(session));
  }
}

TxScheduler::~TxScheduler() = default;

// ---------------------------------------------------------------------------
// Admission (AIMD window)

void TxScheduler::admission_wait(Session& session) {
  const Stopwatch watch;
  const auto aging_ns =
      static_cast<std::uint64_t>(config_.aging_budget.count());
  std::unique_lock lock(admit_mutex_);
  if (static_cast<double>(active_) < session.window_) {
    ++active_;
    if (obs_) obs_->sched_admit_immediate.add();
    return;
  }
  if (obs_) obs_->sched_admit_waits.add();
  bool aged = false;
  for (int attempt = 0;; ++attempt) {
    // Paced re-checks: woken by finish()'s notify, or by the RetryPolicy
    // delay — whichever first — so a missed notify can only cost one
    // pacing step, never a hang.
    admit_cv_.wait_for(lock, config_.wait.delay(attempt, session.rng_));
    if (static_cast<double>(active_) < session.window_) break;
    if (watch.elapsed_ns() >= aging_ns) {
      aged = true;  // anti-starvation: the window loses after aging_budget
      break;
    }
  }
  ++active_;
  if (obs_) {
    if (aged) obs_->sched_admit_aged.add();
    obs_->sched_admit_wait_ns.observe(watch.elapsed_ns());
  }
}

void TxScheduler::admission_update(Session& session, TxOutcome outcome) {
  std::lock_guard lock(admit_mutex_);
  switch (outcome) {
    case TxOutcome::kCommitted:
      session.window_ = std::min(config_.max_window,
                                 session.window_ + config_.additive_increase);
      break;
    case TxOutcome::kLeaseExpired:
      // A whole 2PC died to lease reclamation: back off twice as hard.
      session.window_ *= config_.multiplicative_decrease;
      [[fallthrough]];
    case TxOutcome::kValidation:
    case TxOutcome::kBusy:
    case TxOutcome::kUnavailable:
      session.window_ = std::max(
          config_.min_window, session.window_ * config_.multiplicative_decrease);
      break;
  }
  if (obs_)
    obs_->sched_admit_window.set(
        static_cast<std::int64_t>(session.window_ * 1000.0));
}

// ---------------------------------------------------------------------------
// Conflict queues

void TxScheduler::advance_locked(KeyQueue& queue) {
  while (queue.abandoned.erase(queue.dispatch) > 0) ++queue.dispatch;
}

void TxScheduler::acquire_queues(Session& session, const KeyFootprint& footprint) {
  // Pick the queues of currently-hot footprint keys, handing out stable
  // KeyQueue pointers under the table lock.  The footprint is canonically
  // sorted, so every transaction acquires in the same global key order —
  // circular hold-and-wait is impossible.
  std::vector<KeyQueue*> queues;
  {
    std::lock_guard lock(hot_mutex_);
    for (const FootprintEntry& entry : footprint) {
      if (config_.queue_writes_only && !entry.for_write) continue;
      const bool class_hot = config_.class_hot_level > 0 &&
                             hot_classes_.contains(entry.key.cls);
      auto it = hot_.find(entry.key);
      const bool score_hot =
          it != hot_.end() && it->second.score >= config_.hot_score;
      if (!class_hot && !score_hot) continue;
      if (it == hot_.end()) {
        if (hot_.size() >= config_.max_tracked_keys) continue;  // table full
        it = hot_.try_emplace(entry.key).first;
      }
      HotEntry& hot = it->second;
      if (!hot.queue) hot.queue = std::make_unique<KeyQueue>();
      hot.queue->users.fetch_add(1, std::memory_order_relaxed);
      queues.push_back(hot.queue.get());
    }
  }

  const int width = std::max(1, config_.queue_width);
  for (KeyQueue* queue : queues) {
    std::unique_lock lock(queue->mutex);
    const std::uint64_t ticket = queue->next++;
    // A ticket starts when it reaches the dispatch point AND the service
    // window has room; starts stay FIFO, up to `width` run concurrently.
    const auto may_start = [&] {
      return queue->dispatch == ticket && queue->holders < width;
    };
    const auto start = [&] {
      ++queue->dispatch;
      advance_locked(*queue);
      ++queue->holders;
      session.held_.push_back(queue);
      session.tickets_.push_back(ticket);
      queue->cv.notify_all();  // the next waiter may be eligible too
    };
    if (obs_) {
      obs_->sched_queue_acquires.add();
      obs_->sched_queue_depth.observe(queue->waiters + 1);
    }
    if (may_start()) {
      start();
      continue;
    }
    if (obs_) obs_->sched_queue_waits.add();
    const Stopwatch watch;
    ++queue->waiters;
    const bool got =
        queue->cv.wait_for(lock, config_.queue_wait_budget, may_start);
    --queue->waiters;
    if (obs_) obs_->sched_queue_wait_ns.observe(watch.elapsed_ns());
    if (got) {
      start();
      continue;
    }
    // Wait budget blown (a holder is stalled, or the queue is just long):
    // abandon this ticket and every ticket already held, and run the
    // transaction optimistically — the validation protocol still protects
    // correctness, we only lose the ordering optimization.
    queue->abandoned.insert(ticket);
    advance_locked(*queue);
    queue->cv.notify_all();
    queue->users.fetch_sub(1, std::memory_order_relaxed);
    lock.unlock();
    if (obs_) obs_->sched_queue_timeouts.add();
    release_queues(session);
    return;
  }
}

void TxScheduler::release_queues(Session& session) {
  for (std::size_t i = 0; i < session.held_.size(); ++i) {
    KeyQueue* queue = session.held_[i];
    {
      std::lock_guard lock(queue->mutex);
      // Free a service-window slot; the dispatch point may also be sitting
      // on abandoned tickets meanwhile.
      --queue->holders;
      advance_locked(*queue);
      queue->cv.notify_all();
    }
    queue->users.fetch_sub(1, std::memory_order_relaxed);
  }
  session.held_.clear();
  session.tickets_.clear();
}

void TxScheduler::blame_keys(const std::vector<ir::ObjectKey>& conflict) {
  if (conflict.empty()) return;
  std::lock_guard lock(hot_mutex_);
  for (const auto& key : conflict) {
    auto it = hot_.find(key);
    if (it == hot_.end()) {
      if (hot_.size() >= config_.max_tracked_keys) continue;
      it = hot_.try_emplace(key).first;
    }
    it->second.score += 1.0;
  }
}

void TxScheduler::note_class_levels(const std::vector<ir::ClassId>& classes,
                                    const std::vector<std::uint64_t>& levels) {
  std::lock_guard lock(hot_mutex_);
  hot_classes_.clear();
  // A stale or misaligned snapshot (fewer levels than classes, or classes
  // from an older plan) degrades the refinement, never the correctness:
  // iterate the common prefix only.
  const std::size_t n = std::min(classes.size(), levels.size());
  for (std::size_t i = 0; i < n; ++i)
    if (config_.class_hot_level > 0 && levels[i] >= config_.class_hot_level)
      hot_classes_.insert(classes[i]);
}

void TxScheduler::tick() {
  std::lock_guard lock(hot_mutex_);
  std::size_t hot_now = 0;
  for (auto it = hot_.begin(); it != hot_.end();) {
    HotEntry& entry = it->second;
    entry.score *= config_.decay;
    const bool hot =
        entry.score >= config_.hot_score ||
        (config_.class_hot_level > 0 && hot_classes_.contains(it->first.cls));
    if (hot) ++hot_now;
    // Evict entries that cooled off completely and whose queue nobody
    // references (users counts handed-out pointers; it only grows under
    // hot_mutex_, so a zero here is stable for the duration of the sweep).
    const bool queue_idle =
        !entry.queue || entry.queue->users.load(std::memory_order_relaxed) == 0;
    if (!hot && queue_idle && entry.score < 0.25)
      it = hot_.erase(it);
    else
      ++it;
  }
  if (obs_) obs_->sched_hot_keys.set(static_cast<std::int64_t>(hot_now));
}

bool TxScheduler::is_hot(const ir::ObjectKey& key) const {
  std::lock_guard lock(hot_mutex_);
  if (config_.class_hot_level > 0 && hot_classes_.contains(key.cls)) return true;
  const auto it = hot_.find(key);
  return it != hot_.end() && it->second.score >= config_.hot_score;
}

std::vector<ir::ObjectKey> TxScheduler::hot_keys() const {
  std::lock_guard lock(hot_mutex_);
  std::vector<ir::ObjectKey> keys;
  for (const auto& [key, entry] : hot_) {
    if (entry.score >= config_.hot_score ||
        (config_.class_hot_level > 0 && hot_classes_.contains(key.cls)))
      keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

bool TxScheduler::any_hot(const KeyFootprint& footprint) const {
  std::lock_guard lock(hot_mutex_);
  for (const FootprintEntry& entry : footprint) {
    if (config_.class_hot_level > 0 && hot_classes_.contains(entry.key.cls))
      return true;
    const auto it = hot_.find(entry.key);
    if (it != hot_.end() && it->second.score >= config_.hot_score) return true;
  }
  return false;
}

std::size_t TxScheduler::active() const noexcept {
  std::lock_guard lock(admit_mutex_);
  return active_;
}

// ---------------------------------------------------------------------------
// Session (the executor-facing gate)

void TxScheduler::Session::admit(const KeyFootprint& footprint) {
  if (owner_ == nullptr || active_) return;
  const SchedulerPolicy policy = owner_->config_.policy;
  if (policy == SchedulerPolicy::kNone) return;
  // Only contended transactions take an admission slot; cold traffic flows
  // freely (it neither causes nor suffers the hot-key races the window
  // exists to dampen).
  gated_ = uses_admission(policy) && owner_->any_hot(footprint);
  if (gated_) owner_->admission_wait(*this);
  active_ = true;
  if (uses_queues(policy)) owner_->acquire_queues(*this, footprint);
}

void TxScheduler::Session::on_full_abort(
    TxOutcome kind, const std::vector<ir::ObjectKey>& conflict) {
  if (owner_ == nullptr || !active_) return;
  if (uses_admission(owner_->config_.policy))
    owner_->admission_update(*this, kind);
  owner_->blame_keys(conflict);
}

void TxScheduler::Session::finish(TxOutcome outcome) {
  if (owner_ == nullptr || !active_) return;
  owner_->release_queues(*this);
  if (uses_admission(owner_->config_.policy)) {
    // Aborted runs already shrank the window in on_full_abort; only clean
    // commits grow it here (the additive half of AIMD).
    if (outcome == TxOutcome::kCommitted)
      owner_->admission_update(*this, outcome);
    if (gated_) {
      {
        std::lock_guard lock(owner_->admit_mutex_);
        --owner_->active_;
      }
      owner_->admit_cv_.notify_all();
    }
  }
  active_ = false;
  gated_ = false;
}

}  // namespace acn::sched
