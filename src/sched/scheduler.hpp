// Contention-aware transaction scheduler: hot-key conflict queues and
// AIMD admission control (the queue-oriented transaction-processing idea —
// Qadah's queue-oriented paradigm — applied in front of QR-DTM's optimistic
// runtime).
//
// The optimistic stack underneath is correct but wasteful under sustained
// hot-key load: transactions whose footprints collide burn quorum
// round-trips discovering at validation/commit time that they lost a race
// they were always going to lose.  The scheduler uses two client-local
// levers to spend those round-trips on transactions that can win:
//
//   * Conflict queues (policy kQueue): every transaction declares its
//     predicted key footprint (acn::predicted_footprint — static analysis
//     over the TxProgram's UnitGraph read-write sets).  Footprint keys that
//     are currently *hot* — their class level in the dynamic monitor's
//     contention snapshot crossed class_hot_level, or the key itself
//     accumulated abort blame (every TxAbort names its invalidated keys) —
//     are serialized through per-key FIFO ticket queues.  Tickets are
//     acquired in canonical (ascending key) order, so two transactions can
//     never hold-and-wait in opposite orders: no deadlock by construction.
//     A per-key wait budget bounds the damage of a stalled ticket holder
//     (e.g. one stuck behind a partition): on expiry the waiter abandons
//     its tickets and falls back to plain optimistic execution.  FIFO
//     service means no starvation among queuers.
//
//   * Admission control (policy kAdmit): each client keeps an AIMD window
//     W in [min_window, max_window] — its private estimate of how many
//     transactions the contended keyspace can run concurrently.  A client
//     starts a transaction only while the global count of in-flight
//     scheduled transactions is below its own W; clean commits grow W
//     additively, full aborts (and, harder, lease-expired commits) shrink
//     it multiplicatively.  This replaces randomized exponential backoff as
//     the *first* line of defense: backoff reacts per-incident after the
//     round-trips are spent, the window remembers overload across
//     transactions and stops the race before it reaches the network.
//     min_window >= 1 guarantees progress (an idle system admits anyone);
//     an aging budget force-admits any waiter the window gated for too
//     long, so no client starves behind luckier peers.
//
// kBoth composes the two: admission caps how many transactions run,
// queues order the survivors that still collide.
//
// One TxScheduler is shared by every client thread of a run; each thread
// talks to it through its own Session, which implements acn::SchedulerGate
// (the executor-facing interface; src/acn/footprint.hpp explains the
// layering inversion).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/acn/footprint.hpp"
#include "src/common/retry_policy.hpp"
#include "src/obs/obs.hpp"

namespace acn::sched {

enum class SchedulerPolicy {
  kNone,   // scheduler disabled (the pre-scheduler behavior)
  kQueue,  // hot-key conflict queues only
  kAdmit,  // AIMD admission window only
  kBoth,   // admission first, then queues
};

const char* policy_name(SchedulerPolicy policy) noexcept;
/// Parse "none" | "queue" | "admit" | "both"; nullopt on anything else.
std::optional<SchedulerPolicy> parse_policy(std::string_view text) noexcept;

struct SchedulerConfig {
  SchedulerPolicy policy = SchedulerPolicy::kNone;

  // -- hot-key detection ---------------------------------------------------
  /// A key whose abort-blame EWMA reaches this is serialized.  Blame is +1
  /// per appearance in a TxAbort's invalid list, decayed by `decay` per
  /// scheduler tick (one harness interval).
  double hot_score = 3.0;
  double decay = 0.5;
  /// A class at/above this level in the contention snapshot marks every
  /// footprint key of that class hot (the monitor refinement; 0 disables).
  std::uint64_t class_hot_level = 48;
  /// Tracked-key cap; coldest idle entries are evicted beyond it.
  std::size_t max_tracked_keys = 4096;

  // -- conflict queues -----------------------------------------------------
  /// Per-key ticket wait budget before abandoning the queue position and
  /// running optimistically.
  std::chrono::nanoseconds queue_wait_budget{std::chrono::milliseconds{10}};
  /// Concurrent holders a hot-key queue admits (its service window).  1 is
  /// strict serialization; 2-3 keeps commit rounds pipelined while still
  /// capping the per-key racer count far below the client count.
  int queue_width = 3;
  /// Serialize only transactions that *write* the hot key.  Readers race
  /// optimistically — writer-writer races are what burn the abort budget.
  bool queue_writes_only = true;

  // -- AIMD admission window -----------------------------------------------
  /// Per-client window W: the client starts a transaction only while the
  /// global in-flight count is below its own W.  min_window must stay a few
  /// transactions wide — a client at W=k unblocks when in-flight drops
  /// below k, so k ~ 1 would demand a near-idle system and stall the
  /// client until aging rescues it.  min_window >= 1 still guarantees
  /// progress on an idle system.
  double initial_window = 16.0;
  double min_window = 4.0;
  double max_window = 64.0;
  /// Window growth per clean commit (additive increase).
  double additive_increase = 1.0;
  /// Window factor on a full abort (multiplicative decrease, applied per
  /// aborted attempt); a lease-expired commit applies it twice.
  double multiplicative_decrease = 0.9;
  /// A waiter gated longer than this is admitted regardless (anti-
  /// starvation aging).
  std::chrono::nanoseconds aging_budget{std::chrono::milliseconds{5}};
  /// Paces the admission re-check sleeps while gated (RetryPolicy reuse:
  /// same doubling-plus-jitter shape as the stub's busy ladder, bounded by
  /// the aging budget).
  RetryPolicy wait{.max_retries = 1 << 20,
                   .base = std::chrono::microseconds{50},
                   .max_doublings = 5,
                   .jitter = 1.0};
};

class TxScheduler {
  struct KeyQueue;

 public:
  /// `n_clients` sessions are created up front; `seed` decorrelates the
  /// sessions' pacing jitter.  `obs` may be null (metrics off).
  TxScheduler(SchedulerConfig config, std::size_t n_clients,
              std::uint64_t seed = 1, obs::Observability* obs = nullptr);
  ~TxScheduler();

  TxScheduler(const TxScheduler&) = delete;
  TxScheduler& operator=(const TxScheduler&) = delete;

  /// One client thread's gate.  Sessions are owned by the scheduler and
  /// live as long as it does; session i must only be used by one thread at
  /// a time.
  class Session final : public acn::SchedulerGate {
   public:
    void admit(const KeyFootprint& footprint) override;
    void on_full_abort(TxOutcome kind,
                       const std::vector<ir::ObjectKey>& conflict) override;
    void finish(TxOutcome outcome) override;
    /// The shared scheduler's hotness view — what routes a transaction to
    /// the deterministic lane in hybrid execution mode.
    bool any_hot(const KeyFootprint& footprint) const override {
      return owner_->any_hot(footprint);
    }

    /// Current AIMD window (tests / diagnostics).
    double window() const noexcept { return window_; }

   private:
    friend class TxScheduler;
    TxScheduler* owner_ = nullptr;
    std::size_t index_ = 0;
    Rng rng_{1};
    double window_ = 1.0;          // AIMD state, touched under owner mutex
    bool active_ = false;          // between admit() and finish()
    bool gated_ = false;           // holds an admission slot (hot footprint)
    std::vector<KeyQueue*> held_;  // tickets, in acquisition order
    std::vector<std::uint64_t> tickets_;
  };

  Session& session(std::size_t client) { return *sessions_.at(client); }
  std::size_t sessions() const noexcept { return sessions_.size(); }

  /// Contention-snapshot refinement: classes at/above class_hot_level make
  /// their footprint keys queue-eligible until the next call.  Aligned
  /// vectors, same contract as the dynamic monitor's observe().
  void note_class_levels(const std::vector<ir::ClassId>& classes,
                         const std::vector<std::uint64_t>& levels);

  /// Interval boundary: decay abort-blame scores and evict cold idle keys.
  void tick();

  /// Whether `key` would currently be serialized (tests / diagnostics).
  bool is_hot(const ir::ObjectKey& key) const;
  /// Every *tracked* key that is currently hot (score at/above hot_score,
  /// or its class marked hot by the contention snapshot).  Keys of a hot
  /// class the scheduler never saw blamed are not tracked and so not
  /// listed.  Feeds per-group hotness reporting in the sharded harness:
  /// bucket the result by shard::ShardMap::shard_of to see which quorum
  /// group the contention lives on.
  std::vector<ir::ObjectKey> hot_keys() const;
  /// Whether any footprint entry is currently hot (admission applies only
  /// to such transactions; cold traffic is never gated).
  bool any_hot(const KeyFootprint& footprint) const;
  /// In-flight scheduled transactions (admitted, not finished).
  std::size_t active() const noexcept;

  const SchedulerConfig& config() const noexcept { return config_; }

 private:
  /// Per-hot-key FIFO ticket queue with a bounded service window: tickets
  /// *start* in FIFO order, up to queue_width of them run concurrently.
  /// Stable address (unique_ptr in the map); never destroyed while a waiter
  /// or holder references it, which tick() guarantees by only evicting idle
  /// queues.
  struct KeyQueue {
    std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t next = 0;      // next ticket to hand out
    std::uint64_t dispatch = 0;  // next ticket allowed to start
    int holders = 0;             // tickets currently in the service window
    /// Tickets whose waiters gave up (wait budget); dispatch skips them.
    std::unordered_set<std::uint64_t> abandoned;
    std::size_t waiters = 0;
    /// Handed-out references (incremented under the scheduler's hot_mutex_,
    /// decremented when the holder is done); tick() only evicts at zero.
    std::atomic<int> users{0};
  };

  struct HotEntry {
    double score = 0.0;
    std::unique_ptr<KeyQueue> queue;
  };

  void admission_wait(Session& session);
  void admission_update(Session& session, TxOutcome outcome);
  void acquire_queues(Session& session, const KeyFootprint& footprint);
  void release_queues(Session& session);
  void blame_keys(const std::vector<ir::ObjectKey>& conflict);
  /// Advance `dispatch` past abandoned tickets; call with queue.mutex held.
  static void advance_locked(KeyQueue& queue);

  const SchedulerConfig config_;
  obs::Observability* const obs_;

  // Admission state: the global in-flight count plus per-session windows
  // (windows live in the sessions, guarded by admit_mutex_).
  mutable std::mutex admit_mutex_;
  std::condition_variable admit_cv_;
  std::size_t active_ = 0;

  // Hot-key table: abort-blame scores, class-hot flags, ticket queues.
  mutable std::mutex hot_mutex_;
  std::unordered_map<ir::ObjectKey, HotEntry, store::ObjectKeyHash> hot_;
  std::unordered_set<ir::ClassId> hot_classes_;

  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace acn::sched
