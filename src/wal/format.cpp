#include "src/wal/format.hpp"

#include <array>
#include <cinttypes>
#include <cstdio>

#include "src/dtm/codec.hpp"

namespace acn::wal {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>(v >> shift));
}

std::uint32_t get_u32(std::span<const std::uint8_t> bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8)
    v |= static_cast<std::uint32_t>(bytes[at++]) << shift;
  return v;
}

// 'ACNS' little-endian, followed by a format version byte sequence.
// Version 2 added cross-shard metadata (participants / coordinator / redo
// values) to open prepares so in-doubt eligibility survives compaction.
constexpr std::uint32_t kSnapshotMagic = 0x534E4341u;
constexpr std::uint32_t kSnapshotVersion = 2;

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t byte : bytes) c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void frame_record(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

SegmentScan parse_segment(std::span<const std::uint8_t> bytes) {
  SegmentScan scan;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderBytes) break;  // torn header
    const std::uint32_t length = get_u32(bytes, pos);
    const std::uint32_t crc = get_u32(bytes, pos + 4);
    if (bytes.size() - pos - kFrameHeaderBytes < length) break;  // torn body
    const auto payload = bytes.subspan(pos + kFrameHeaderBytes, length);
    if (crc32(payload) != crc) break;  // corrupt
    scan.records.emplace_back(payload.begin(), payload.end());
    pos += kFrameHeaderBytes + length;
  }
  scan.valid_bytes = pos;
  scan.torn = pos != bytes.size();
  return scan;
}

std::vector<std::uint8_t> encode_snapshot(const SnapshotContents& contents) {
  dtm::Encoder e;
  e.u32(kSnapshotMagic);
  e.u32(kSnapshotVersion);
  e.u32(static_cast<std::uint32_t>(contents.objects.size()));
  for (const auto& [key, rec] : contents.objects) {
    e.key(key);
    e.record(rec.value);
    e.u64(rec.version);
  }
  e.u32(static_cast<std::uint32_t>(contents.open_prepares.size()));
  for (const auto& prepare : contents.open_prepares) {
    e.u64(prepare.tx);
    e.list(prepare.keys, [&](const store::ObjectKey& k) { e.key(k); });
    e.list(prepare.participants, [&](std::uint32_t g) { e.u32(g); });
    e.u64(static_cast<std::uint64_t>(prepare.coordinator));
    e.list(prepare.values, [&](const store::Record& r) { e.record(r); });
  }
  auto bytes = e.take();
  const std::uint32_t crc = crc32(bytes);
  put_u32(bytes, crc);
  return bytes;
}

std::optional<SnapshotContents> decode_snapshot(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 12 + 4) return std::nullopt;  // header + crc minimum
  const auto body = bytes.first(bytes.size() - 4);
  if (crc32(body) != get_u32(bytes, bytes.size() - 4)) return std::nullopt;
  try {
    dtm::Decoder d(body);
    if (d.u32() != kSnapshotMagic) return std::nullopt;
    if (d.u32() != kSnapshotVersion) return std::nullopt;
    SnapshotContents contents;
    const std::uint32_t n_objects = d.u32();
    contents.objects.reserve(n_objects);
    for (std::uint32_t i = 0; i < n_objects; ++i) {
      const auto key = d.key();
      store::VersionedRecord rec;
      rec.value = d.record();
      rec.version = d.u64();
      contents.objects.emplace_back(key, std::move(rec));
    }
    const std::uint32_t n_prepares = d.u32();
    contents.open_prepares.reserve(n_prepares);
    for (std::uint32_t i = 0; i < n_prepares; ++i) {
      dtm::OpenPrepare prepare;
      prepare.tx = d.u64();
      prepare.keys = d.list<store::ObjectKey>([&] { return d.key(); });
      prepare.participants = d.list<std::uint32_t>([&] { return d.u32(); });
      prepare.coordinator = static_cast<std::int64_t>(d.u64());
      prepare.values = d.list<store::Record>([&] { return d.record(); });
      contents.open_prepares.push_back(std::move(prepare));
    }
    if (!d.exhausted()) return std::nullopt;
    return contents;
  } catch (const dtm::CodecError&) {
    return std::nullopt;
  }
}

std::string segment_file_name(std::uint64_t seq) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "wal-%06" PRIu64 ".log", seq);
  return buffer;
}

std::string snapshot_file_name(std::uint64_t seq) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "snap-%06" PRIu64 ".snap", seq);
  return buffer;
}

namespace {

std::optional<std::uint64_t> parse_numbered(const std::string& name,
                                            const std::string& prefix,
                                            const std::string& suffix) {
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return std::nullopt;
  std::uint64_t seq = 0;
  for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return seq;
}

}  // namespace

std::optional<std::uint64_t> parse_segment_name(const std::string& name) {
  return parse_numbered(name, "wal-", ".log");
}

std::optional<std::uint64_t> parse_snapshot_name(const std::string& name) {
  return parse_numbered(name, "snap-", ".snap");
}

}  // namespace acn::wal
