// On-disk formats for the durability subsystem.
//
// Two file kinds live in a replica's data directory:
//
//   * Log segments (`wal-NNNNNN.log`): a sequence of framed records, each
//     `[u32 payload length][u32 crc32(payload)][payload]` little-endian.
//     The payload is a wire-encoded dtm::Request (Prepare / Commit /
//     Abort), so the WAL reuses the protocol codec verbatim — a record
//     that round-trips on the wire round-trips on disk.  parse_segment()
//     tolerates a torn tail: a crash mid-write leaves a short header, a
//     length running past EOF, or a CRC mismatch, and the scan simply
//     stops there, reporting how many bytes were valid.
//
//   * Snapshots (`snap-NNNNNN.snap`): one full dump of the replica's
//     committed objects plus the prepares still unresolved when the
//     snapshot was cut (they must survive compaction — their log records
//     may be about to be deleted).  The file is
//     `[magic][version][objects][open prepares][crc32 of everything
//     prior]`; decode_snapshot() returns nullopt on any mismatch so the
//     caller can fall back to an older snapshot.
//
// The sequence number in both names refers to log segments: snapshot N
// covers every record in segments <= N, so recovery loads `snap-N.snap`
// and replays only segments > N.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/dtm/durability.hpp"

namespace acn::wal {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
std::uint32_t crc32(std::span<const std::uint8_t> bytes) noexcept;

// ---- log record framing -------------------------------------------------

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

/// Append one framed record to `out`.
void frame_record(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

struct SegmentScan {
  std::vector<std::vector<std::uint8_t>> records;  // payloads, in order
  std::size_t valid_bytes = 0;  // prefix of the input that parsed cleanly
  bool torn = false;            // trailing bytes were unreadable
};

/// Scan a segment's bytes, stopping (not throwing) at the first torn or
/// corrupt frame.
SegmentScan parse_segment(std::span<const std::uint8_t> bytes);

// ---- snapshot files -----------------------------------------------------

struct SnapshotContents {
  std::vector<std::pair<store::ObjectKey, store::VersionedRecord>> objects;
  std::vector<dtm::OpenPrepare> open_prepares;
};

std::vector<std::uint8_t> encode_snapshot(const SnapshotContents& contents);

/// nullopt when the bytes are truncated, corrupt, or from an unknown
/// format version.
std::optional<SnapshotContents> decode_snapshot(
    std::span<const std::uint8_t> bytes);

// ---- file naming --------------------------------------------------------

std::string segment_file_name(std::uint64_t seq);
std::string snapshot_file_name(std::uint64_t seq);
/// Sequence number when `name` is a segment/snapshot file, else nullopt.
std::optional<std::uint64_t> parse_segment_name(const std::string& name);
std::optional<std::uint64_t> parse_snapshot_name(const std::string& name);

}  // namespace acn::wal
