#include "src/wal/persistence.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <unordered_map>
#include <variant>

#include "src/common/clock.hpp"
#include "src/dtm/codec.hpp"

namespace acn::wal {

namespace fs = std::filesystem;

namespace {

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::vector<std::uint8_t> bytes;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return bytes;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fseek(file, 0, SEEK_SET);
  if (size > 0) {
    bytes.resize(static_cast<std::size_t>(size));
    const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), file);
    bytes.resize(got);
  }
  std::fclose(file);
  return bytes;
}

void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

template <class Parse>
std::vector<std::pair<std::uint64_t, fs::path>> list_numbered(
    const std::string& dir, Parse&& parse) {
  std::vector<std::pair<std::uint64_t, fs::path>> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const auto seq = parse(entry.path().filename().string());
    if (seq.has_value()) out.emplace_back(*seq, entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

ReplicaPersistence::ReplicaPersistence(WalConfig config)
    : config_(std::move(config)) {
  if (config_.dir.empty())
    throw std::invalid_argument("ReplicaPersistence: empty data directory");
  fs::create_directories(config_.dir);
  scan_directory_locked();
  last_flush_ns_ = now_ns();
}

ReplicaPersistence::~ReplicaPersistence() {
  std::lock_guard<std::mutex> guard(mutex_);
  flush_locked();
  close_segment_locked();
}

void ReplicaPersistence::scan_directory_locked() {
  std::uint64_t top = 0;
  for (const auto& [seq, path] :
       list_numbered(config_.dir, parse_segment_name))
    top = std::max(top, seq);
  for (const auto& [seq, path] :
       list_numbered(config_.dir, parse_snapshot_name))
    top = std::max(top, seq);
  next_seq_ = top + 1;
}

void ReplicaPersistence::append_locked(const dtm::Request& request) {
  const auto payload = dtm::encode(request);
  const std::size_t before = buffer_.size();
  frame_record(buffer_, payload);
  const std::size_t framed = buffer_.size() - before;
  appended_bytes_ += framed;
  bytes_since_snapshot_ += framed;
  if (obs_ != nullptr) obs_->wal_append_bytes.add(framed);

  if (config_.flush_interval_ns == 0) {
    flush_locked();
  } else if (config_.flush_interval_ns > 0) {
    const std::uint64_t now = now_ns();
    if (now - last_flush_ns_ >=
        static_cast<std::uint64_t>(config_.flush_interval_ns))
      flush_locked();
  }
}

void ReplicaPersistence::flush_locked() {
  if (buffer_.empty()) {
    last_flush_ns_ = now_ns();
    return;
  }
  if (segment_ == nullptr) {
    const fs::path path =
        fs::path(config_.dir) / segment_file_name(next_seq_);
    segment_ = std::fopen(path.c_str(), "ab");
    if (segment_ == nullptr)
      throw std::runtime_error("wal: cannot open segment " + path.string());
    segment_seq_ = next_seq_++;
  }
  std::fwrite(buffer_.data(), 1, buffer_.size(), segment_);
  std::fflush(segment_);
  if (config_.fsync) fsync_file_locked(segment_);
  buffer_.clear();
  last_flush_ns_ = now_ns();
}

void ReplicaPersistence::fsync_file_locked(std::FILE* file) {
  ::fsync(::fileno(file));
  ++fsyncs_;
  if (obs_ != nullptr) obs_->wal_fsync_count.add();
}

void ReplicaPersistence::close_segment_locked() {
  if (segment_ != nullptr) {
    std::fclose(segment_);
    segment_ = nullptr;
  }
}

void ReplicaPersistence::log_prepare(const dtm::PrepareRequest& prepare) {
  dtm::Request request;
  request.payload = prepare;
  std::lock_guard<std::mutex> guard(mutex_);
  append_locked(request);
}

bool ReplicaPersistence::log_commit(const dtm::CommitRequest& commit) {
  dtm::Request request;
  request.payload = commit;
  std::lock_guard<std::mutex> guard(mutex_);
  append_locked(request);
  if (config_.snapshot_every_bytes > 0 && !snapshot_claimed_ &&
      bytes_since_snapshot_ >= config_.snapshot_every_bytes) {
    snapshot_claimed_ = true;
    return true;
  }
  return false;
}

void ReplicaPersistence::log_abort(dtm::TxId tx,
                                   const std::vector<store::ObjectKey>& keys) {
  dtm::Request request;
  request.payload = dtm::AbortRequest{tx, keys};
  std::lock_guard<std::mutex> guard(mutex_);
  append_locked(request);
}

void ReplicaPersistence::write_snapshot(
    const std::function<dtm::SnapshotData()>& provide) {
  std::lock_guard<std::mutex> guard(mutex_);
  flush_locked();
  // Rotate: the snapshot covers every record in segments <= `covered`;
  // appends after this point land in a fresh segment and get replayed.
  const std::uint64_t covered = segment_ != nullptr ? segment_seq_
                                                    : next_seq_ - 1;
  close_segment_locked();

  // Read the state only now, with the covered prefix sealed: every record
  // in it was logged post-install (see DurabilitySink), so the provider's
  // view already reflects it and compaction cannot lose an effect.
  dtm::SnapshotData data = provide();
  SnapshotContents contents;
  contents.objects = std::move(data.objects);
  contents.open_prepares = std::move(data.open_prepares);
  const auto bytes = encode_snapshot(contents);

  const fs::path dir(config_.dir);
  const fs::path tmp = dir / "snap-inflight.tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr)
    throw std::runtime_error("wal: cannot write snapshot " + tmp.string());
  std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fflush(file);
  if (config_.fsync) fsync_file_locked(file);
  std::fclose(file);
  fs::rename(tmp, dir / snapshot_file_name(covered));
  if (config_.fsync) fsync_directory(config_.dir);
  if (obs_ != nullptr) obs_->snapshot_write_bytes.add(bytes.size());

  // Compaction: the snapshot supersedes everything it covers.  The
  // previous snapshot is kept as a fallback against bit rot in the new
  // one; older ones go.
  for (const auto& [seq, path] : list_numbered(config_.dir, parse_segment_name))
    if (seq <= covered) fs::remove(path);
  auto snapshots = list_numbered(config_.dir, parse_snapshot_name);
  while (snapshots.size() > 2) {
    fs::remove(snapshots.front().second);
    snapshots.erase(snapshots.begin());
  }

  bytes_since_snapshot_ = buffer_.size();
  snapshot_claimed_ = false;
}

void ReplicaPersistence::flush() {
  std::lock_guard<std::mutex> guard(mutex_);
  flush_locked();
}

void ReplicaPersistence::drop_unflushed() {
  std::lock_guard<std::mutex> guard(mutex_);
  bytes_since_snapshot_ -= std::min<std::uint64_t>(bytes_since_snapshot_,
                                                   buffer_.size());
  buffer_.clear();
}

void ReplicaPersistence::wipe() {
  std::lock_guard<std::mutex> guard(mutex_);
  close_segment_locked();
  buffer_.clear();
  std::error_code ec;
  fs::remove_all(config_.dir, ec);
  fs::create_directories(config_.dir);
  next_seq_ = 1;
  bytes_since_snapshot_ = 0;
  snapshot_claimed_ = false;
  last_flush_ns_ = now_ns();
}

RecoveredState ReplicaPersistence::recover() {
  std::lock_guard<std::mutex> guard(mutex_);
  // A restart: whatever never reached the disk is gone.
  buffer_.clear();
  close_segment_locked();

  RecoveredState state;
  std::uint64_t covered = 0;
  std::unordered_map<store::ObjectKey, store::VersionedRecord,
                     store::ObjectKeyHash>
      objects;
  std::unordered_map<dtm::TxId, dtm::OpenPrepare> open;

  // Newest snapshot that passes its checksum wins; a rotted one falls
  // back to its predecessor (bounded extra loss, healed by catch-up).
  auto snapshots = list_numbered(config_.dir, parse_snapshot_name);
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    const auto bytes = read_file(it->second);
    auto contents = decode_snapshot(bytes);
    if (!contents.has_value()) continue;
    covered = it->first;
    state.snapshot_objects = contents->objects.size();
    for (auto& [key, rec] : contents->objects) objects[key] = std::move(rec);
    for (auto& prepare : contents->open_prepares)
      open[prepare.tx] = std::move(prepare);
    break;
  }

  for (const auto& [seq, path] :
       list_numbered(config_.dir, parse_segment_name)) {
    if (seq <= covered) continue;  // the snapshot already contains these
    const auto bytes = read_file(path);
    const auto scan = parse_segment(bytes);
    if (scan.torn) {
      state.log_torn = true;
      std::error_code ec;
      fs::resize_file(path, scan.valid_bytes, ec);  // truncate the torn tail
    }
    for (const auto& payload : scan.records) {
      dtm::Request request;
      try {
        request = dtm::decode_request(payload);
      } catch (const dtm::CodecError&) {
        state.log_torn = true;  // CRC passed but payload didn't parse
        break;
      }
      ++state.replayed_records;
      std::visit(
          [&](const auto& req) {
            using T = std::decay_t<decltype(req)>;
            if constexpr (std::is_same_v<T, dtm::PrepareRequest>) {
              open[req.tx] = {req.tx, req.write_keys, req.participants,
                              req.coordinator, req.values};
            } else if constexpr (std::is_same_v<T, dtm::CommitRequest>) {
              for (std::size_t i = 0; i < req.keys.size(); ++i) {
                auto& slot = objects[req.keys[i]];
                if (req.versions[i] > slot.version)
                  slot = {req.values[i], req.versions[i]};
              }
              open.erase(req.tx);
            } else if constexpr (std::is_same_v<T, dtm::AbortRequest>) {
              open.erase(req.tx);
            }
          },
          request.payload);
    }
  }

  scan_directory_locked();  // future appends start a fresh segment
  if (obs_ != nullptr) obs_->wal_replay_records.add(state.replayed_records);

  state.objects.reserve(objects.size());
  for (auto& [key, rec] : objects) state.objects.emplace_back(key, std::move(rec));
  state.open_prepares.reserve(open.size());
  for (auto& [tx, prepare] : open)
    state.open_prepares.push_back(std::move(prepare));
  std::sort(state.open_prepares.begin(), state.open_prepares.end(),
            [](const auto& a, const auto& b) { return a.tx < b.tx; });
  return state;
}

std::uint64_t ReplicaPersistence::fsync_count() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return fsyncs_;
}

std::uint64_t ReplicaPersistence::appended_bytes() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return appended_bytes_;
}

std::uint64_t ReplicaPersistence::buffered_bytes() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return buffer_.size();
}

std::vector<std::uint64_t> ReplicaPersistence::segment_seqs() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<std::uint64_t> out;
  for (const auto& [seq, path] : list_numbered(config_.dir, parse_segment_name))
    out.push_back(seq);
  return out;
}

std::vector<std::uint64_t> ReplicaPersistence::snapshot_seqs() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<std::uint64_t> out;
  for (const auto& [seq, path] :
       list_numbered(config_.dir, parse_snapshot_name))
    out.push_back(seq);
  return out;
}

}  // namespace acn::wal
