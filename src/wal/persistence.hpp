// Per-replica durable state: write-ahead log + snapshots + recovery.
//
// ReplicaPersistence is the file-backed dtm::DurabilitySink one server
// attaches.  Three mechanisms cooperate:
//
//   * Group commit.  Appends land in an in-memory buffer and reach the
//     segment file together: the first append after `flush_interval_ns`
//     since the previous flush writes the whole buffer and fsyncs once, so
//     the fsync rate is bounded by the interval rather than the commit
//     rate.  The window's records are *acknowledged before they are
//     durable* (async group commit); a crash loses at most one window,
//     and the rejoin delta catch-up refetches exactly what was lost.
//
//   * Snapshots + compaction.  When `snapshot_every_bytes` of log have
//     accumulated, log_commit() tells (exactly one of) the callers to dump
//     the store.  write_snapshot() rotates to a fresh segment, writes the
//     dump to a temp file, fsyncs, atomically renames it to
//     `snap-N.snap` (N = last covered segment), then deletes segments
//     <= N and all but the previous snapshot (kept as a fallback against
//     a rotted newest snapshot).  Unresolved prepares ride inside the
//     snapshot because compaction may delete their log records.
//
//   * Recovery.  recover() loads the newest snapshot that passes its CRC,
//     replays every record in segments > N (re-installing committed
//     writes version-guardedly, tracking prepares until a commit/abort
//     resolves them), truncates a torn segment tail in place, and returns
//     the rebuilt objects plus the still-open prepares for the server to
//     re-arm as leased protections.  Future appends go to a fresh segment.
//
// All public methods are thread-safe; handlers on many client threads log
// concurrently.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/dtm/durability.hpp"
#include "src/obs/obs.hpp"
#include "src/wal/format.hpp"

namespace acn::wal {

struct WalConfig {
  /// Per-replica data directory, created on demand.  One live
  /// ReplicaPersistence per directory.
  std::string dir;
  /// Group-commit window: > 0 batches appends and flushes when a new
  /// append lands at least this much after the previous flush; 0 flushes
  /// (and fsyncs) every append; < 0 flushes only explicitly.
  std::int64_t flush_interval_ns = 2'000'000;
  /// Snapshot + compact once this many log bytes accumulate since the
  /// last snapshot; 0 disables automatic snapshots.
  std::uint64_t snapshot_every_bytes = std::uint64_t{1} << 20;
  /// fsync data after each flush and snapshot.  Off keeps unit tests fast
  /// while still exercising the full append/replay path.
  bool fsync = true;
};

struct RecoveredState {
  std::vector<std::pair<store::ObjectKey, store::VersionedRecord>> objects;
  std::vector<dtm::OpenPrepare> open_prepares;
  std::size_t replayed_records = 0;   // log records applied after the snapshot
  std::size_t snapshot_objects = 0;   // objects loaded from the snapshot
  bool log_torn = false;              // a torn/corrupt tail was dropped
};

class ReplicaPersistence final : public dtm::DurabilitySink {
 public:
  explicit ReplicaPersistence(WalConfig config);
  ~ReplicaPersistence() override;

  ReplicaPersistence(const ReplicaPersistence&) = delete;
  ReplicaPersistence& operator=(const ReplicaPersistence&) = delete;

  // DurabilitySink
  void log_prepare(const dtm::PrepareRequest& prepare) override;
  bool log_commit(const dtm::CommitRequest& commit) override;
  void log_abort(dtm::TxId tx,
                 const std::vector<store::ObjectKey>& keys) override;
  void write_snapshot(
      const std::function<dtm::SnapshotData()>& provide) override;

  /// Push the group-commit buffer to disk now.
  void flush();

  /// Simulated crash: records still in the group-commit buffer never
  /// reached the disk — drop them.
  void drop_unflushed();

  /// Crash losing the disk: delete every segment and snapshot and start
  /// over empty.
  void wipe();

  /// Rebuild state from disk (see the class comment).  Anything buffered
  /// but unflushed is discarded — recover() models a restart.
  RecoveredState recover();

  void set_obs(obs::Observability* obs) noexcept { obs_ = obs; }

  const WalConfig& config() const noexcept { return config_; }

  // Introspection for tests and benches.
  std::uint64_t fsync_count() const;
  std::uint64_t appended_bytes() const;     // framed bytes accepted so far
  std::uint64_t buffered_bytes() const;     // accepted but not yet on disk
  std::vector<std::uint64_t> segment_seqs() const;   // sorted ascending
  std::vector<std::uint64_t> snapshot_seqs() const;  // sorted ascending

 private:
  void append_locked(const dtm::Request& request);
  void flush_locked();
  void fsync_file_locked(std::FILE* file);
  void close_segment_locked();
  void scan_directory_locked();  // refresh next_seq_ from on-disk names

  WalConfig config_;
  obs::Observability* obs_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<std::uint8_t> buffer_;   // framed, not yet written
  std::FILE* segment_ = nullptr;       // open segment, nullptr until needed
  std::uint64_t segment_seq_ = 0;      // seq of `segment_` when open
  std::uint64_t next_seq_ = 1;         // seq the next opened segment gets
  std::uint64_t last_flush_ns_ = 0;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t bytes_since_snapshot_ = 0;
  bool snapshot_claimed_ = false;  // a log_commit caller owes a snapshot
  std::uint64_t fsyncs_ = 0;
};

}  // namespace acn::wal
