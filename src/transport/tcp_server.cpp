#include "src/transport/tcp_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "src/transport/frame.hpp"

namespace acn::transport {
namespace {

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

struct TcpServer::Impl {
  struct Conn {
    int fd = -1;
    std::uint64_t serial = 0;
    bool hello_seen = false;
    Channel channel = Channel::kData;
    std::int64_t node = -1;
    FrameReader reader;
    std::vector<std::uint8_t> wbuf;
    std::size_t woff = 0;
  };

  struct Job {
    std::uint64_t conn = 0;
    std::uint64_t id = 0;
    std::int64_t from = -1;
    std::vector<std::uint8_t> body;
    bool control = false;
  };

  struct Outgoing {
    std::uint64_t conn = 0;
    std::vector<std::uint8_t> bytes;  // already framed
    bool poison = false;              // close instead of replying
  };

  TcpServerConfig config;
  DataHandler on_data;
  ControlHandler on_control;
  net::TransportCounters* counters = nullptr;

  int listen_fd = -1;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread io;
  std::vector<std::thread> workers;

  std::mutex job_mutex;
  std::condition_variable job_cv;
  std::deque<Job> jobs;
  bool workers_stop = false;
  std::atomic<int> jobs_inflight{0};

  std::mutex out_mutex;
  std::vector<Outgoing> outbox;
  std::vector<ControlAction> actions;

  std::atomic<bool> suspended{false};
  std::atomic<bool> stopping{false};
  std::atomic<bool> stopped{false};
  std::atomic<std::uint64_t> unflushed{0};  // queued write bytes, io-owned

  std::mutex shutdown_mutex;
  std::condition_variable shutdown_cv;
  bool shutdown_requested = false;

  std::unordered_map<int, Conn> conns;                   // by fd
  std::unordered_map<std::uint64_t, int> conn_by_serial;
  std::uint64_t next_serial = 1;

  void wake() {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd, &one, sizeof one);
  }

  void push_outgoing(Outgoing out) {
    {
      std::lock_guard lock(out_mutex);
      outbox.push_back(std::move(out));
    }
    wake();
  }

  void push_action(ControlAction action) {
    {
      std::lock_guard lock(out_mutex);
      actions.push_back(action);
    }
    wake();
  }

  // ---- IO-thread side ---------------------------------------------------

  void update_interest(Conn& c) {
    epoll_event ev{};
    ev.events = EPOLLIN | (c.woff < c.wbuf.size() ? EPOLLOUT : 0u);
    ev.data.fd = c.fd;
    epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
  }

  void close_conn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    unflushed.fetch_sub(it->second.wbuf.size() - it->second.woff,
                        std::memory_order_relaxed);
    conn_by_serial.erase(it->second.serial);
    epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns.erase(it);
  }

  void close_data_conns() {
    std::vector<int> victims;
    for (const auto& [fd, c] : conns)
      if (!c.hello_seen || c.channel == Channel::kData) victims.push_back(fd);
    for (const int fd : victims) close_conn(fd);
  }

  void accept_loop() {
    for (;;) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) break;
      set_nodelay(fd);
      Conn c;
      c.fd = fd;
      c.serial = next_serial++;
      c.reader = FrameReader(config.max_frame);
      conn_by_serial[c.serial] = fd;
      conns.emplace(fd, std::move(c));
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.fd = fd;
      epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    }
  }

  void flush_writes(Conn& c) {
    while (c.woff < c.wbuf.size()) {
      const ssize_t n = ::send(c.fd, c.wbuf.data() + c.woff,
                               c.wbuf.size() - c.woff, MSG_NOSIGNAL);
      if (n > 0) {
        c.woff += static_cast<std::size_t>(n);
        counters->bytes_sent.fetch_add(static_cast<std::uint64_t>(n),
                                       std::memory_order_relaxed);
        unflushed.fetch_sub(static_cast<std::uint64_t>(n),
                            std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_conn(c.fd);
      return;
    }
    if (c.woff == c.wbuf.size()) {
      c.wbuf.clear();
      c.woff = 0;
    }
    update_interest(c);
  }

  void drain_outbox() {
    std::vector<Outgoing> batch;
    std::vector<ControlAction> acts;
    {
      std::lock_guard lock(out_mutex);
      batch.swap(outbox);
      acts.swap(actions);
    }
    for (Outgoing& out : batch) {
      const auto it = conn_by_serial.find(out.conn);
      if (it == conn_by_serial.end()) continue;  // peer already gone
      if (out.poison) {
        close_conn(it->second);
        continue;
      }
      Conn& c = conns.at(it->second);
      c.wbuf.insert(c.wbuf.end(), out.bytes.begin(), out.bytes.end());
      unflushed.fetch_add(out.bytes.size(), std::memory_order_relaxed);
      flush_writes(c);
    }
    for (const ControlAction action : acts) {
      switch (action) {
        case ControlAction::kSuspend:
          suspended.store(true);
          close_data_conns();
          break;
        case ControlAction::kResume:
          suspended.store(false);
          break;
        case ControlAction::kShutdown: {
          std::lock_guard lock(shutdown_mutex);
          shutdown_requested = true;
          shutdown_cv.notify_all();
          break;
        }
        case ControlAction::kNone:
          break;
      }
    }
  }

  // One decoded frame payload from `c`; false => close the connection.
  bool handle_payload(Conn& c, std::span<const std::uint8_t> payload) {
    Envelope env;
    try {
      env = read_envelope(payload);
    } catch (const dtm::CodecError&) {
      counters->frames_corrupt.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const auto body = payload.subspan(env.body_offset);
    switch (env.kind) {
      case FrameKind::kHello: {
        dtm::Decoder dec(body);
        try {
          const auto raw = dec.u8();
          if (raw > static_cast<std::uint8_t>(Channel::kControl)) return false;
          c.channel = static_cast<Channel>(raw);
          c.node = dec.i64();
        } catch (const dtm::CodecError&) {
          return false;
        }
        c.hello_seen = true;
        // A suspended replica refuses the data plane but keeps answering
        // control — the operator's out-of-band path into a "dead" node.
        if (c.channel == Channel::kData && suspended.load()) return false;
        return true;
      }
      case FrameKind::kRequest: {
        if (!c.hello_seen || c.channel != Channel::kData) return false;
        if (body.size() < sizeof(std::uint64_t)) return false;
        dtm::Decoder dec(body);
        Job job;
        job.conn = c.serial;
        job.id = env.id;
        job.from = dec.i64();
        const auto req = body.subspan(sizeof(std::uint64_t));
        job.body.assign(req.begin(), req.end());
        enqueue(std::move(job));
        return true;
      }
      case FrameKind::kControl: {
        if (!c.hello_seen || c.channel != Channel::kControl) return false;
        Job job;
        job.conn = c.serial;
        job.id = env.id;
        job.control = true;
        job.body.assign(body.begin(), body.end());
        enqueue(std::move(job));
        return true;
      }
      default:
        // kResponse / kControlReply travel server -> client only.
        counters->frames_corrupt.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
  }

  void handle_readable(Conn& c) {
    std::uint8_t buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
      if (n > 0) {
        counters->bytes_recv.fetch_add(static_cast<std::uint64_t>(n),
                                       std::memory_order_relaxed);
        if (!c.reader.feed({buf, static_cast<std::size_t>(n)})) {
          counters->frames_corrupt.fetch_add(1, std::memory_order_relaxed);
          close_conn(c.fd);
          return;
        }
        for (const auto& payload : c.reader.take()) {
          if (!handle_payload(c, payload)) {
            close_conn(c.fd);
            return;
          }
        }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      close_conn(c.fd);  // EOF or hard error
      return;
    }
  }

  void io_loop() {
    epoll_event events[64];
    while (!stopping.load()) {
      const int n = epoll_wait(epoll_fd, events, 64, 100);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == listen_fd) {
          accept_loop();
          continue;
        }
        if (fd == event_fd) {
          std::uint64_t drained;
          [[maybe_unused]] ssize_t r = ::read(event_fd, &drained, sizeof drained);
          drain_outbox();
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          close_conn(fd);
          continue;
        }
        if (events[i].events & EPOLLOUT) flush_writes(it->second);
        it = conns.find(fd);  // flush may have closed (and erased) the conn
        if (it == conns.end()) continue;
        if (events[i].events & EPOLLIN) handle_readable(it->second);
      }
    }
    // Final courtesy flush so a shutdown reply reaches its caller.
    drain_outbox();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    while (unflushed.load(std::memory_order_relaxed) > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      for (auto& [fd, c] : conns)
        if (c.woff < c.wbuf.size()) flush_writes(c);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::vector<int> fds;
    for (const auto& [fd, c] : conns) fds.push_back(fd);
    for (const int fd : fds) close_conn(fd);
  }

  // ---- worker side ------------------------------------------------------

  void enqueue(Job job) {
    std::lock_guard lock(job_mutex);
    jobs.push_back(std::move(job));
    job_cv.notify_one();
  }

  void worker_loop() {
    for (;;) {
      Job job;
      {
        std::unique_lock lock(job_mutex);
        job_cv.wait(lock, [&] { return workers_stop || !jobs.empty(); });
        if (workers_stop && jobs.empty()) return;
        job = std::move(jobs.front());
        jobs.pop_front();
        jobs_inflight.fetch_add(1, std::memory_order_relaxed);
      }
      Outgoing out;
      out.conn = job.conn;
      ControlAction action = ControlAction::kNone;
      if (job.control) {
        ControlOutcome outcome = on_control(job.body);
        action = outcome.action;
        const auto payload =
            make_payload(FrameKind::kControlReply, job.id, outcome.reply_body);
        append_frame(out.bytes, payload);
      } else {
        const auto response = on_data(job.from, job.body);
        if (!response) {
          out.poison = true;
        } else {
          const auto payload =
              make_payload(FrameKind::kResponse, job.id, *response);
          append_frame(out.bytes, payload);
        }
      }
      push_outgoing(std::move(out));
      if (action != ControlAction::kNone) push_action(action);
      jobs_inflight.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  bool idle() {
    std::lock_guard lock(job_mutex);
    std::lock_guard lock2(out_mutex);
    return jobs.empty() && outbox.empty() &&
           jobs_inflight.load(std::memory_order_relaxed) == 0 &&
           unflushed.load(std::memory_order_relaxed) == 0;
  }
};

TcpServer::TcpServer(TcpServerConfig config, DataHandler on_data,
                     ControlHandler on_control)
    : impl_(std::make_unique<Impl>()) {
  impl_->config = std::move(config);
  impl_->on_data = std::move(on_data);
  impl_->on_control = std::move(on_control);
  impl_->counters = &counters_;

  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (impl_->listen_fd < 0)
    throw std::runtime_error("TcpServer: socket() failed");
  int one = 1;
  setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(impl_->config.port));
  if (inet_pton(AF_INET, impl_->config.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("TcpServer: bad host " + impl_->config.host);
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0)
    throw std::runtime_error("TcpServer: bind failed: " +
                             std::string(std::strerror(errno)));
  if (::listen(impl_->listen_fd, 64) != 0)
    throw std::runtime_error("TcpServer: listen failed");

  socklen_t len = sizeof addr;
  getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  impl_->epoll_fd = epoll_create1(0);
  impl_->event_fd = eventfd(0, EFD_NONBLOCK);
  if (impl_->epoll_fd < 0 || impl_->event_fd < 0)
    throw std::runtime_error("TcpServer: epoll/eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = impl_->listen_fd;
  epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->listen_fd, &ev);
  ev.data.fd = impl_->event_fd;
  epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->event_fd, &ev);

  impl_->io = std::thread([this] { impl_->io_loop(); });
  const std::size_t n_workers = std::max<std::size_t>(1, impl_->config.workers);
  for (std::size_t i = 0; i < n_workers; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::wait_shutdown() {
  std::unique_lock lock(impl_->shutdown_mutex);
  impl_->shutdown_cv.wait(lock, [&] {
    return impl_->shutdown_requested || impl_->stopped.load();
  });
}

void TcpServer::stop() {
  if (impl_->stopped.exchange(true)) return;
  // Let in-flight work finish and replies flush (bounded).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  while (!impl_->idle() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  {
    std::lock_guard lock(impl_->job_mutex);
    impl_->workers_stop = true;
    impl_->job_cv.notify_all();
  }
  for (auto& w : impl_->workers) w.join();
  impl_->stopping.store(true);
  impl_->wake();
  impl_->io.join();
  ::close(impl_->listen_fd);
  ::close(impl_->epoll_fd);
  ::close(impl_->event_fd);
  {
    std::lock_guard lock(impl_->shutdown_mutex);
    impl_->shutdown_cv.notify_all();
  }
}

}  // namespace acn::transport
