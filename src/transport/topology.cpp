#include "src/transport/topology.hpp"

#include <fstream>
#include <sstream>

namespace acn::transport {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string unquote(const std::string& s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"')
    return s.substr(1, s.size() - 2);
  return s;
}

bool parse_int(const std::string& s, long long& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(s, &pos);
    return pos == s.size();
  } catch (...) {
    return false;
  }
}

}  // namespace

const TopologyNode* Topology::find(int id) const noexcept {
  for (const TopologyNode& n : nodes)
    if (n.id == id) return &n;
  return nullptr;
}

std::string encode_topology(const Topology& topo) {
  std::ostringstream out;
  out << "servers = " << topo.servers << "\n";
  out << "groups = " << topo.groups << "\n";
  out << "durability = \"" << topo.durability << "\"\n";
  for (const TopologyNode& n : topo.nodes) {
    out << "\n[[node]]\n";
    out << "id = " << n.id << "\n";
    out << "group = " << n.group << "\n";
    out << "host = \"" << n.host << "\"\n";
    out << "port = " << n.port << "\n";
  }
  return out.str();
}

std::optional<Topology> parse_topology(const std::string& text,
                                       std::string* error) {
  const auto fail = [&](const std::string& why) -> std::optional<Topology> {
    if (error) *error = why;
    return std::nullopt;
  };
  Topology topo;
  TopologyNode* current = nullptr;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string line = trim(raw);
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line = trim(line.substr(0, hash));
    if (line.empty()) continue;
    if (line == "[[node]]") {
      topo.nodes.emplace_back();
      current = &topo.nodes.back();
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      return fail("line " + std::to_string(line_no) + ": expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = unquote(trim(line.substr(eq + 1)));
    long long num = 0;
    const bool is_num = parse_int(value, num);
    if (current) {
      if (key == "id" && is_num)
        current->id = static_cast<int>(num);
      else if (key == "group" && is_num)
        current->group = static_cast<std::uint32_t>(num);
      else if (key == "host")
        current->host = value;
      else if (key == "port" && is_num)
        current->port = static_cast<int>(num);
      else
        return fail("line " + std::to_string(line_no) + ": bad node key '" +
                    key + "'");
    } else {
      if (key == "servers" && is_num)
        topo.servers = static_cast<std::size_t>(num);
      else if (key == "groups" && is_num)
        topo.groups = static_cast<std::size_t>(num);
      else if (key == "durability")
        topo.durability = value;
      else
        return fail("line " + std::to_string(line_no) + ": bad key '" + key +
                    "'");
    }
  }
  if (topo.nodes.empty()) return fail("no [[node]] sections");
  if (topo.servers == 0) topo.servers = topo.nodes.size();
  if (topo.groups == 0) topo.groups = 1;
  return topo;
}

std::optional<Topology> load_topology(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_topology(buf.str(), error);
}

void save_topology(const Topology& topo, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  out << encode_topology(topo);
}

}  // namespace acn::transport
