// TCP stream framing for the real transport.
//
// Wire format, identical to the WAL's record framing (src/wal/format.hpp):
//
//   [u32 payload length][u32 crc32(payload)][payload]     little-endian
//
// so one frame idiom covers disk and wire.  The payload's first bytes are
// a small envelope decoded by src/transport/wire.hpp:
//
//   [u8 kind][u64 id][kind-specific body]
//
// Unlike wal::parse_segment (a batch scan that tolerates a torn tail —
// crashes legitimately truncate log files), the stream reader treats any
// malformed frame as fatal for its connection: an oversized length prefix
// or a CRC mismatch means the peer is broken or the stream lost sync, and
// the only safe recovery is to drop the connection and re-dial.  The
// reader is incremental (feed() accepts arbitrary byte slices, frames
// surface as their last byte arrives) and never reads past the bytes it
// was given.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace acn::transport {

/// Hard ceiling on one frame's payload.  Generous for this protocol (the
/// largest messages are store dumps in control replies) while keeping a
/// corrupted length prefix from looking like a multi-gigabyte allocation.
constexpr std::size_t kMaxFramePayload = 64u << 20;  // 64 MiB

/// Append one framed payload to `out`.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

/// Incremental frame decoder for one connection's byte stream.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Consume `bytes` from the stream.  Returns false when the stream is
  /// poisoned — an oversized length prefix or a CRC mismatch — after which
  /// the connection must be closed (feed() keeps returning false and
  /// surfaces no further frames).
  bool feed(std::span<const std::uint8_t> bytes);

  /// Complete payloads decoded so far, in stream order (moved out).
  std::vector<std::vector<std::uint8_t>> take();

  bool poisoned() const noexcept { return poisoned_; }
  /// Frames rejected (0 or 1 — the first corrupt frame kills the stream).
  std::size_t corrupt_frames() const noexcept { return poisoned_ ? 1 : 0; }

 private:
  std::size_t max_payload_;
  bool poisoned_ = false;
  std::vector<std::uint8_t> buffer_;  // undecoded tail of the stream
  std::size_t consumed_ = 0;          // decoded prefix of buffer_
  std::vector<std::vector<std::uint8_t>> ready_;
};

}  // namespace acn::transport
