// Asynchronous TCP server for a replica process.
//
// One epoll IO thread owns the listening socket and every accepted
// connection; a small worker pool executes request handlers so a slow
// handler (fsync in a durable commit) never stalls the event loop.  The
// flow per data request:
//
//   IO thread: read bytes -> FrameReader -> envelope -> enqueue job
//   worker:    DataHandler(from, request body) -> response body
//              -> push framed kResponse (same id) to the outbox
//   IO thread: (eventfd wakeup) append to the connection's write queue,
//              flush as EPOLLOUT allows
//
// Two planes share the port, split per connection by the hello frame:
//   * data — dtm protocol traffic.  suspend() kills every data connection
//     and refuses new data hellos: the socket-layer form of "this replica
//     is partitioned/crashed" chaos (abl_partition semantics).
//   * control — the harness management surface (src/transport/wire.hpp).
//     Control connections survive suspension, modelling the out-of-band
//     operator path; ControlHandler returns the reply body plus an Action
//     the server applies to itself (suspend / resume / shutdown).
//
// The server is codec-agnostic about bodies: handlers receive and return
// raw body bytes.  A handler signalling failure (nullopt) poisons the
// connection, same as a corrupt frame — the peer re-dials.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/net/transport.hpp"
#include "src/transport/frame.hpp"
#include "src/transport/wire.hpp"

namespace acn::transport {

struct TcpServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; read the bound port from port()
  std::size_t workers = 2;
  std::size_t max_frame = kMaxFramePayload;
};

/// What the server should do to itself after a control op.
enum class ControlAction : std::uint8_t { kNone, kSuspend, kResume, kShutdown };

struct ControlOutcome {
  std::vector<std::uint8_t> reply_body;
  ControlAction action = ControlAction::kNone;
};

class TcpServer {
 public:
  /// Handle one data request: `from` is the sender node id from the
  /// request envelope, `body` the encoded dtm::Request.  Return the
  /// encoded dtm::Response, or nullopt to poison the connection.
  using DataHandler = std::function<std::optional<std::vector<std::uint8_t>>(
      std::int64_t from, std::span<const std::uint8_t> body)>;
  /// Handle one control request body; always returns a reply.
  using ControlHandler =
      std::function<ControlOutcome(std::span<const std::uint8_t> body)>;

  TcpServer(TcpServerConfig config, DataHandler on_data,
            ControlHandler on_control);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound listening port (resolved even when config.port was 0).
  int port() const noexcept { return port_; }

  /// Block until a control op requested kShutdown (or stop() was called).
  void wait_shutdown();

  /// Stop the loop and the workers; flushes pending responses briefly so a
  /// shutdown reply reaches its caller.  Idempotent.
  void stop();

  const net::TransportCounters& counters() const noexcept { return counters_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  int port_ = 0;
  net::TransportCounters counters_;
};

}  // namespace acn::transport
