#include "src/transport/spawn.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace acn::transport {
namespace {

std::string log_tail(const std::string& path, std::size_t max_bytes = 2048) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "(no log)";
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(in.tellg());
  const auto start = size > max_bytes ? size - max_bytes : 0;
  in.seekg(static_cast<std::streamoff>(start));
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

ProcessFleet::~ProcessFleet() { kill_all(); }

std::string ProcessFleet::default_binary() {
  if (const char* env = std::getenv("ACN_CLUSTER_MAIN"); env && *env)
    return env;
  // Fall back to the build-tree layout: cluster_main sits in src/ next to
  // the libraries, and every test/bench binary lives one directory deep
  // (build/tests, build/bench) or in build/src itself.
  char self[4096];
  const ssize_t n = readlink("/proc/self/exe", self, sizeof self - 1);
  if (n > 0) {
    self[n] = '\0';
    std::string dir(self);
    dir = dir.substr(0, dir.find_last_of('/'));
    for (const std::string& candidate :
         {dir + "/cluster_main", dir + "/../src/cluster_main",
          dir + "/../../src/cluster_main"}) {
      if (access(candidate.c_str(), X_OK) == 0) return candidate;
    }
  }
  throw std::runtime_error(
      "cluster_main binary not found: set ACN_CLUSTER_MAIN or build the "
      "cluster_main target");
}

int ProcessFleet::spawn(const std::string& binary, int node,
                        const std::vector<std::string>& args,
                        const std::string& log_path,
                        std::chrono::milliseconds ready_timeout) {
  int out_pipe[2];
  if (pipe(out_pipe) != 0) throw std::runtime_error("spawn: pipe() failed");

  const int log_fd =
      ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (log_fd < 0) {
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    throw std::runtime_error("spawn: cannot open log " + log_path);
  }

  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(binary.c_str()));
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(log_fd);
    throw std::runtime_error("spawn: fork() failed");
  }
  if (pid == 0) {
    // Child: stdout -> readiness pipe, stderr -> log file.
    dup2(out_pipe[1], STDOUT_FILENO);
    dup2(log_fd, STDERR_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(log_fd);
    execv(binary.c_str(), argv.data());
    // exec failed — report through the (redirected) stderr and die hard.
    const char* msg = "execv failed\n";
    [[maybe_unused]] ssize_t w = write(STDERR_FILENO, msg, strlen(msg));
    _exit(127);
  }

  ::close(out_pipe[1]);
  ::close(log_fd);

  SpawnedNode entry;
  entry.node = node;
  entry.pid = pid;
  entry.log_path = log_path;

  // Read stdout lines until ACN_READY, child exit, or timeout.
  std::string buffer;
  const auto deadline = std::chrono::steady_clock::now() + ready_timeout;
  int port = -1;
  while (port < 0) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    pollfd pfd{out_pipe[0], POLLIN, 0};
    const int rc = ::poll(&pfd, 1, std::max<int>(0, (int)left.count()));
    if (rc <= 0) break;  // timeout
    char chunk[512];
    const ssize_t n = ::read(out_pipe[0], chunk, sizeof chunk);
    if (n <= 0) break;  // EOF: child exited before READY
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      int got_node = -1, got_port = -1;
      if (sscanf(line.c_str(), "ACN_READY %d %d", &got_node, &got_port) == 2 &&
          got_node == node) {
        port = got_port;
        break;
      }
    }
  }
  ::close(out_pipe[0]);
  if (port < 0) {
    ::kill(pid, SIGKILL);
    int status = 0;
    waitpid(pid, &status, 0);
    throw std::runtime_error("node " + std::to_string(node) +
                             " never reported ready; log tail:\n" +
                             log_tail(log_path));
  }
  entry.port = port;
  nodes_.push_back(std::move(entry));
  return port;
}

bool ProcessFleet::alive(int node) const {
  for (const SpawnedNode& n : nodes_)
    if (n.node == node && n.pid > 0) return ::kill(n.pid, 0) == 0;
  return false;
}

bool ProcessFleet::wait_all(std::chrono::milliseconds grace) {
  bool clean = true;
  const auto deadline = std::chrono::steady_clock::now() + grace;
  for (SpawnedNode& n : nodes_) {
    if (n.pid <= 0) continue;
    int status = 0;
    for (;;) {
      const pid_t rc = waitpid(n.pid, &status, WNOHANG);
      if (rc == n.pid) {
        clean = clean && WIFEXITED(status) && WEXITSTATUS(status) == 0;
        n.pid = -1;
        break;
      }
      if (rc < 0) {  // already reaped / not ours
        n.pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(n.pid, SIGKILL);
        waitpid(n.pid, &status, 0);
        n.pid = -1;
        clean = false;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return clean;
}

void ProcessFleet::kill_all() {
  for (SpawnedNode& n : nodes_) {
    if (n.pid <= 0) continue;
    ::kill(n.pid, SIGKILL);
    int status = 0;
    waitpid(n.pid, &status, 0);
    n.pid = -1;
  }
}

}  // namespace acn::transport
