#include "src/transport/wire.hpp"

namespace acn::transport {
namespace {

using dtm::CodecError;
using dtm::Decoder;
using dtm::Encoder;

void put_string(Encoder& enc, const std::string& s) {
  enc.u32(static_cast<std::uint32_t>(s.size()));
  for (const char c : s) enc.u8(static_cast<std::uint8_t>(c));
}

std::string read_string(Decoder& dec) {
  const std::uint32_t n = dec.u32();
  if (n > dec.remaining()) throw CodecError("string length exceeds buffer");
  std::string out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    out.push_back(static_cast<char>(dec.u8()));
  return out;
}

void put_entry(Encoder& enc, const SeedEntry& e) {
  enc.key(e.key);
  enc.record(e.value);
  enc.u64(e.version);
}

SeedEntry read_entry(Decoder& dec) {
  SeedEntry e;
  e.key = dec.key();
  e.value = dec.record();
  e.version = dec.u64();
  return e;
}

void put_indoubt(Encoder& enc, const dtm::InDoubtTx& t) {
  enc.u64(t.tx);
  enc.list(t.keys, [&](const store::ObjectKey& k) { enc.key(k); });
  enc.list(t.participants, [&](std::uint32_t g) { enc.u32(g); });
  enc.i64(t.coordinator);
}

dtm::InDoubtTx read_indoubt(Decoder& dec) {
  dtm::InDoubtTx t;
  t.tx = dec.u64();
  t.keys = dec.list<store::ObjectKey>([&] { return dec.key(); });
  t.participants = dec.list<std::uint32_t>([&] { return dec.u32(); });
  t.coordinator = dec.i64();
  return t;
}

ControlOp read_op(Decoder& dec) {
  const std::uint8_t raw = dec.u8();
  if (raw < static_cast<std::uint8_t>(ControlOp::kPing) ||
      raw > static_cast<std::uint8_t>(ControlOp::kShutdown))
    throw CodecError("unknown control op");
  return static_cast<ControlOp>(raw);
}

}  // namespace

void put_envelope(Encoder& enc, FrameKind kind, std::uint64_t id) {
  enc.u8(static_cast<std::uint8_t>(kind));
  enc.u64(id);
}

Envelope read_envelope(std::span<const std::uint8_t> payload) {
  Decoder dec(payload);
  Envelope env;
  const std::uint8_t raw = dec.u8();
  if (raw < static_cast<std::uint8_t>(FrameKind::kHello) ||
      raw > static_cast<std::uint8_t>(FrameKind::kControlReply))
    throw CodecError("unknown frame kind");
  env.kind = static_cast<FrameKind>(raw);
  env.id = dec.u64();
  env.body_offset = payload.size() - dec.remaining();
  return env;
}

std::vector<std::uint8_t> encode_control(const ControlRequest& req) {
  Encoder enc;
  enc.u8(static_cast<std::uint8_t>(req.op));
  enc.list(req.entries, [&](const SeedEntry& e) { put_entry(enc, e); });
  enc.list(req.classes, [&](store::ClassId c) { enc.u32(c); });
  enc.boolean(req.lose_disk);
  return enc.take();
}

ControlRequest decode_control(std::span<const std::uint8_t> body) {
  Decoder dec(body);
  ControlRequest req;
  req.op = read_op(dec);
  req.entries = dec.list<SeedEntry>([&] { return read_entry(dec); });
  req.classes = dec.list<store::ClassId>([&] { return dec.u32(); });
  req.lose_disk = dec.boolean();
  if (!dec.exhausted()) throw CodecError("trailing bytes in control request");
  return req;
}

std::vector<std::uint8_t> encode_control_reply(const ControlReply& reply) {
  Encoder enc;
  enc.boolean(reply.ok);
  put_string(enc, reply.error);
  enc.list(reply.entries, [&](const SeedEntry& e) { put_entry(enc, e); });
  enc.list(reply.levels, [&](std::uint64_t v) { enc.u64(v); });
  enc.u64(reply.count);
  enc.list(reply.indoubt, [&](const dtm::InDoubtTx& t) { put_indoubt(enc, t); });
  enc.u64(reply.probe.open_leases);
  enc.u64(reply.probe.protected_keys);
  enc.u64(reply.probe.wrong_group);
  enc.u64(reply.probe.indoubt);
  enc.u64(reply.probe.open_prepares);
  return enc.take();
}

ControlReply decode_control_reply(std::span<const std::uint8_t> body) {
  Decoder dec(body);
  ControlReply reply;
  reply.ok = dec.boolean();
  reply.error = read_string(dec);
  reply.entries = dec.list<SeedEntry>([&] { return read_entry(dec); });
  reply.levels = dec.list<std::uint64_t>([&] { return dec.u64(); });
  reply.count = dec.u64();
  reply.indoubt = dec.list<dtm::InDoubtTx>([&] { return read_indoubt(dec); });
  reply.probe.open_leases = dec.u64();
  reply.probe.protected_keys = dec.u64();
  reply.probe.wrong_group = dec.u64();
  reply.probe.indoubt = dec.u64();
  reply.probe.open_prepares = dec.u64();
  if (!dec.exhausted()) throw CodecError("trailing bytes in control reply");
  return reply;
}

std::vector<std::uint8_t> make_payload(FrameKind kind, std::uint64_t id,
                                       std::span<const std::uint8_t> body) {
  Encoder enc;
  put_envelope(enc, kind, id);
  std::vector<std::uint8_t> out = enc.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> encode_hello(Channel channel, std::int64_t node) {
  Encoder enc;
  put_envelope(enc, FrameKind::kHello, 0);
  enc.u8(static_cast<std::uint8_t>(channel));
  enc.i64(node);
  return enc.take();
}

std::vector<std::uint8_t> encode_request_payload(std::uint64_t id,
                                                 net::NodeId from,
                                                 const dtm::Request& req) {
  Encoder enc;
  put_envelope(enc, FrameKind::kRequest, id);
  enc.i64(from);
  std::vector<std::uint8_t> out = enc.take();
  const std::vector<std::uint8_t> body = dtm::encode(req);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> encode_response_payload(std::uint64_t id,
                                                  const dtm::Response& res) {
  Encoder enc;
  put_envelope(enc, FrameKind::kResponse, id);
  std::vector<std::uint8_t> out = enc.take();
  const std::vector<std::uint8_t> body = dtm::encode(res);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

}  // namespace acn::transport
