// Cluster topology files for multi-process deployments.
//
// A topology names every replica process: node id, quorum group, and the
// address its TcpServer listens on.  The format is a minimal TOML subset —
// top-level `key = value` pairs plus one `[[node]]` table per replica —
// chosen so the same file reads naturally in CI scripts and by hand:
//
//   # 3 replicas, one group
//   servers = 3
//   groups = 1
//   durability = "none"
//
//   [[node]]
//   id = 0
//   group = 0
//   host = "127.0.0.1"
//   port = 7001
//
// harness::Cluster writes one of these next to the per-process logs when
// it spawns a fleet (so a failed CI run documents what ran), and accepts
// one via TcpConfig::topology_path to attach to externally-launched
// processes instead of spawning — the multi-machine path.  cluster_main
// reads the same file via --config to resolve its own listen address.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace acn::transport {

struct TopologyNode {
  int id = 0;
  std::uint32_t group = 0;
  std::string host = "127.0.0.1";
  int port = 0;
};

struct Topology {
  std::size_t servers = 0;  // per group
  std::size_t groups = 1;
  std::string durability = "none";  // "none" | "wal"
  std::vector<TopologyNode> nodes;

  const TopologyNode* find(int id) const noexcept;
};

std::string encode_topology(const Topology& topo);
/// Parse the TOML subset above; nullopt (with *error set when provided) on
/// malformed input.
std::optional<Topology> parse_topology(const std::string& text,
                                       std::string* error = nullptr);
std::optional<Topology> load_topology(const std::string& path,
                                      std::string* error = nullptr);
void save_topology(const Topology& topo, const std::string& path);

}  // namespace acn::transport
