// Real asynchronous TCP implementation of net::Transport.
//
// One TcpTransport instance is the harness process's endpoint into a fleet
// of cluster_main replicas.  A single epoll IO thread owns every data
// connection:
//
//   * connections dial on demand (first call to a peer) as non-blocking
//     connects; an eventfd wakes the loop whenever a caller queues frames;
//   * each peer has one write queue; frames append and flush as EPOLLOUT
//     allows, so concurrent callers' requests interleave at frame
//     granularity, never mid-frame;
//   * responses correlate back to callers by the request id carried in the
//     frame envelope — any number of calls (and multicalls) to any peers
//     stay in flight simultaneously;
//   * a call that sees no response within its deadline returns kDropped,
//     exactly how the simulation surfaces a timeout: QuorumStub's
//     RetryPolicy / op_deadline ladder works unmodified on both;
//   * a connection failure fails that peer's in-flight calls with kDropped
//     (outcome unknown — the lost-ack hazard) and clears its queue; the
//     next call re-dials, subject to exponential backoff, bumping
//     transport.reconnects when a previously-working peer comes back.
//
// Chaos maps onto the socket layer client-side: set_node_down fails calls
// fast and kills the live connection; partitions refuse cross-group calls
// and kill crossing connections; drop probability rolls per leg (a
// request-leg drop never writes the frame, a response-leg drop discards
// the arrived reply); extra latency sleeps the caller.  Listener-side
// suspension (the replica refusing the world) is driven separately through
// the control plane — see harness::Cluster::crash_node.
//
// The control plane rides one SEPARATE blocking connection per peer,
// serialized by a per-peer mutex and immune to the fault knobs, so the
// harness can manage (seed, dump, crash, restart, probe) replicas that the
// data plane currently treats as dead.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/dtm/quorum_stub.hpp"
#include "src/transport/frame.hpp"
#include "src/transport/wire.hpp"

namespace acn::transport {

struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

struct TcpTransportConfig {
  /// Per-call response deadline; expiry surfaces as kDropped.
  std::chrono::nanoseconds call_timeout{std::chrono::milliseconds(250)};
  /// Establishing a connection counts against the calls waiting on it.
  std::chrono::nanoseconds connect_timeout{std::chrono::seconds(1)};
  /// Re-dial backoff after a failed connect: base * 2^attempt, capped.
  std::chrono::nanoseconds reconnect_base{std::chrono::milliseconds(2)};
  int reconnect_max_doublings = 6;
  /// Control-plane round-trip budget (blocking; generous — checkpoints
  /// fsync and dumps ship whole stores).
  std::chrono::nanoseconds control_timeout{std::chrono::seconds(10)};
  std::size_t max_frame = kMaxFramePayload;
};

/// Thrown by the control plane on connection failure, timeout, or a
/// peer-reported error.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

class TcpTransport final : public dtm::DtmTransport {
 public:
  TcpTransport(std::map<net::NodeId, Endpoint> peers, TcpTransportConfig config,
               std::uint64_t seed);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // -- net::Transport -----------------------------------------------------
  net::CallResult<dtm::Response> call(net::NodeId from, net::NodeId to,
                                      const dtm::Request& req) override;
  std::vector<net::CallResult<dtm::Response>> multicall(
      net::NodeId from, const std::vector<net::NodeId>& targets,
      const dtm::Request& req) override;
  void register_local(net::NodeId id, Handler handler) override;

  void set_node_down(net::NodeId id, bool down) override;
  bool node_down(net::NodeId id) const override;
  void set_drop_probability(double p) override;
  double drop_probability() const override;
  void set_extra_latency(Nanos extra) override;
  Nanos extra_latency() const override;
  void set_partition(
      const std::vector<std::vector<net::NodeId>>& groups) override;
  void clear_partition() override;
  bool partitioned() const override;
  void set_link_fault(net::NodeId from, net::NodeId to,
                      net::LinkFault fault) override;
  void clear_link_fault(net::NodeId from, net::NodeId to) override;
  void clear_link_faults() override;

  const net::TransportCounters& counters() const override { return counters_; }

  // -- control plane ------------------------------------------------------
  /// Round-trip one management op to `to`; throws TransportError when the
  /// peer is unreachable, times out, or reports !ok.
  ControlReply control(net::NodeId to, const ControlRequest& req);

  /// Like control(), but returns nullopt instead of throwing — for
  /// teardown paths that must visit every peer regardless of health.
  std::optional<ControlReply> try_control(net::NodeId to,
                                          const ControlRequest& req);

  /// Close every connection and stop the IO thread (idempotent; the
  /// destructor calls it).  In-flight calls fail with kDropped.
  void close();

  /// Peers this transport can reach (the fleet's data-plane endpoints).
  const std::map<net::NodeId, Endpoint>& peers() const { return peers_; }

 private:
  struct Impl;
  std::map<net::NodeId, Endpoint> peers_;
  std::unique_ptr<Impl> impl_;
  net::TransportCounters counters_;
};

}  // namespace acn::transport
