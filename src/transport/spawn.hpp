// Spawning and supervising a fleet of cluster_main replica processes.
//
// Each replica is fork/exec'd with its stderr redirected to a per-node log
// file and its stdout piped back to the parent; the child prints
// `ACN_READY <node> <port>` once its TcpServer is listening (port matters:
// replicas bind ephemeral ports so parallel CI jobs never collide), and
// the parent blocks on that line with a timeout.  Teardown is staged:
// callers first ask each replica to exit via the control plane
// (ControlOp::kShutdown), then wait_all() reaps with a grace period, and
// anything still alive is SIGKILLed — so a hung replica fails the run
// loudly instead of leaking processes into the machine.
#pragma once

#include <chrono>
#include <string>
#include <sys/types.h>
#include <vector>

namespace acn::transport {

struct SpawnedNode {
  int node = -1;
  pid_t pid = -1;
  int port = 0;
  std::string log_path;
};

class ProcessFleet {
 public:
  ProcessFleet() = default;
  /// Kills anything still running (SIGKILL — prefer an orderly shutdown +
  /// wait_all() first).
  ~ProcessFleet();

  ProcessFleet(const ProcessFleet&) = delete;
  ProcessFleet& operator=(const ProcessFleet&) = delete;

  /// Locate the cluster_main binary: $ACN_CLUSTER_MAIN when set, else next
  /// to the running executable (the build tree layout).  Throws
  /// std::runtime_error when neither resolves to an executable file.
  static std::string default_binary();

  /// Launch `binary` with `args` (argv[1..]), stderr to `log_path`, and
  /// wait up to `ready_timeout` for the ACN_READY handshake.  Returns the
  /// node's bound port.  Throws std::runtime_error on spawn failure, child
  /// exit, or timeout (the log's tail is included in the message).
  int spawn(const std::string& binary, int node,
            const std::vector<std::string>& args, const std::string& log_path,
            std::chrono::milliseconds ready_timeout);

  const std::vector<SpawnedNode>& nodes() const noexcept { return nodes_; }
  bool alive(int node) const;

  /// Reap every child, waiting up to `grace` for voluntary exit, then
  /// SIGKILL + reap stragglers.  Returns true when all exited voluntarily
  /// with status 0.
  bool wait_all(std::chrono::milliseconds grace);

  /// SIGKILL + reap everything immediately.
  void kill_all();

 private:
  std::vector<SpawnedNode> nodes_;
};

}  // namespace acn::transport
