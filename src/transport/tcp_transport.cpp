#include "src/transport/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "src/common/rng.hpp"
#include "src/transport/frame.hpp"

namespace acn::transport {
namespace {

using Clock = std::chrono::steady_clock;

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

bool fill_addr(const Endpoint& ep, sockaddr_in& addr) {
  addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
  return inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) == 1;
}

std::uint64_t link_key(net::NodeId from, net::NodeId to) noexcept {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}

}  // namespace

struct TcpTransport::Impl {
  struct Pending {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    /// Response-leg drop, rolled at send time: a completed result is
    /// discarded and surfaced as kDropped (lost ack — handler ran).
    bool response_drop = false;
    net::CallResult<dtm::Response> result;

    void complete(net::CallResult<dtm::Response> r) {
      std::lock_guard lock(m);
      done = true;
      result = std::move(r);
      cv.notify_all();
    }
  };

  struct Peer {
    Endpoint ep;
    // -- data plane (owned by the IO thread once dialing starts) --
    int fd = -1;
    bool connecting = false;
    bool hello_queued = false;
    FrameReader reader;
    std::vector<std::uint8_t> wbuf;
    std::size_t woff = 0;
    bool ever_connected = false;
    int dial_failures = 0;
    Clock::time_point next_dial{};  // earliest re-dial (backoff)
    std::unordered_set<std::uint64_t> inflight;  // request ids on this peer
    // -- control plane (blocking, caller threads, serialized) --
    std::mutex control_mutex;
    int control_fd = -1;
    std::uint64_t control_seq = 0;
  };

  TcpTransportConfig config;
  net::TransportCounters* counters = nullptr;

  int epoll_fd = -1;
  int event_fd = -1;
  std::thread io;
  std::atomic<bool> stopping{false};
  std::atomic<bool> closed{false};

  // state_mutex guards peers' data-plane members, pending, faults and
  // local handlers.  The IO thread takes it around every epoll event; the
  // hot caller path takes it once to queue frames.  Never held across
  // epoll_wait or a sleep.
  mutable std::mutex state_mutex;
  std::map<net::NodeId, std::unique_ptr<Peer>> peers;
  std::unordered_map<int, net::NodeId> peer_by_fd;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending;
  std::atomic<std::uint64_t> next_request_id{1};

  std::unordered_map<net::NodeId, Handler> locals;
  std::unordered_set<net::NodeId> down;
  std::atomic<double> drop_probability{0.0};
  std::atomic<std::int64_t> extra_latency_ns{0};
  std::unordered_map<std::uint64_t, net::LinkFault> links;
  std::unordered_map<net::NodeId, int> partition_groups;
  bool partitioned = false;

  void wake() {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd, &one, sizeof one);
  }

  // Per-thread fault RNG, mirroring net::Network::drop_rng.
  static Rng& fault_rng() noexcept {
    static std::atomic<std::uint64_t> next_stream{0};
    thread_local Rng rng = [] {
      std::uint64_t stream =
          0x7cbdecafULL + next_stream.fetch_add(1, std::memory_order_relaxed);
      return Rng(splitmix64(stream));
    }();
    return rng;
  }

  // ---- fault evaluation (state_mutex held unless noted) -----------------

  int group_of(net::NodeId id) const {
    const auto it = partition_groups.find(id);
    return it == partition_groups.end() ? 0 : it->second;
  }

  bool partition_blocked(net::NodeId from, net::NodeId to) const {
    return partitioned && group_of(from) != group_of(to);
  }

  double leg_drop(net::NodeId from, net::NodeId to) const {
    double p = drop_probability.load(std::memory_order_relaxed);
    const auto it = links.find(link_key(from, to));
    if (it != links.end() && it->second.drop > 0.0)
      p = 1.0 - (1.0 - p) * (1.0 - it->second.drop);
    return p;
  }

  Nanos leg_extra(net::NodeId from, net::NodeId to) const {
    Nanos extra{extra_latency_ns.load(std::memory_order_relaxed)};
    const auto it = links.find(link_key(from, to));
    if (it != links.end()) extra += it->second.extra_latency;
    return extra;
  }

  // ---- IO thread --------------------------------------------------------

  void update_interest(Peer& p) {
    epoll_event ev{};
    ev.events = EPOLLIN |
                ((p.connecting || p.woff < p.wbuf.size()) ? EPOLLOUT : 0u);
    ev.data.fd = p.fd;
    epoll_ctl(epoll_fd, EPOLL_CTL_MOD, p.fd, &ev);
  }

  // Requires state_mutex.  Fails every in-flight call on `p` (connection
  // loss = outcome unknown = kDropped) and drops its queued frames.
  void fail_peer(Peer& p, net::NetErrorCode code) {
    for (const std::uint64_t id : p.inflight) {
      const auto it = pending.find(id);
      if (it == pending.end()) continue;
      net::CallResult<dtm::Response> r;
      r.error = code;
      it->second->complete(std::move(r));
      pending.erase(it);
    }
    p.inflight.clear();
    p.wbuf.clear();
    p.woff = 0;
  }

  // Requires state_mutex.
  void close_peer(Peer& p, net::NetErrorCode fail_code) {
    if (p.fd >= 0) {
      epoll_ctl(epoll_fd, EPOLL_CTL_DEL, p.fd, nullptr);
      peer_by_fd.erase(p.fd);
      ::close(p.fd);
      p.fd = -1;
    }
    p.connecting = false;
    p.hello_queued = false;
    p.reader = FrameReader(config.max_frame);
    fail_peer(p, fail_code);
  }

  // Requires state_mutex.  Dial if the peer has work and no connection.
  void maybe_dial(net::NodeId id, Peer& p) {
    if (p.fd >= 0 || p.wbuf.empty()) return;
    if (Clock::now() < p.next_dial) return;  // backing off
    sockaddr_in addr;
    if (!fill_addr(p.ep, addr)) {
      fail_peer(p, net::NetErrorCode::kDropped);
      return;
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) {
      fail_peer(p, net::NetErrorCode::kDropped);
      return;
    }
    set_nodelay(fd);
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                             sizeof addr);
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(fd);
      on_dial_failure(p);
      return;
    }
    p.fd = fd;
    p.connecting = rc != 0;
    peer_by_fd[fd] = id;
    // The hello frame must precede everything queued while disconnected.
    if (!p.hello_queued) {
      std::vector<std::uint8_t> hello;
      append_frame(hello, encode_hello(Channel::kData, -1));
      p.wbuf.insert(p.wbuf.begin(), hello.begin(), hello.end());
      p.hello_queued = true;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    if (!p.connecting) on_connected(p);
  }

  // Requires state_mutex.
  void on_dial_failure(Peer& p) {
    const int capped =
        std::min(p.dial_failures, config.reconnect_max_doublings);
    p.next_dial = Clock::now() + config.reconnect_base * (1u << capped);
    ++p.dial_failures;
    fail_peer(p, net::NetErrorCode::kDropped);
    p.hello_queued = false;
  }

  // Requires state_mutex.
  void on_connected(Peer& p) {
    p.connecting = false;
    p.dial_failures = 0;
    if (p.ever_connected)
      counters->reconnects.fetch_add(1, std::memory_order_relaxed);
    p.ever_connected = true;
    flush_writes(p);
  }

  // Requires state_mutex.
  void flush_writes(Peer& p) {
    while (p.woff < p.wbuf.size()) {
      const ssize_t n = ::send(p.fd, p.wbuf.data() + p.woff,
                               p.wbuf.size() - p.woff, MSG_NOSIGNAL);
      if (n > 0) {
        p.woff += static_cast<std::size_t>(n);
        counters->bytes_sent.fetch_add(static_cast<std::uint64_t>(n),
                                       std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      close_peer(p, net::NetErrorCode::kDropped);
      return;
    }
    if (p.woff == p.wbuf.size()) {
      p.wbuf.clear();
      p.woff = 0;
    }
    update_interest(p);
  }

  // Requires state_mutex.
  void handle_readable(Peer& p) {
    std::uint8_t buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(p.fd, buf, sizeof buf, 0);
      if (n > 0) {
        counters->bytes_recv.fetch_add(static_cast<std::uint64_t>(n),
                                       std::memory_order_relaxed);
        if (!p.reader.feed({buf, static_cast<std::size_t>(n)})) {
          counters->frames_corrupt.fetch_add(1, std::memory_order_relaxed);
          close_peer(p, net::NetErrorCode::kDropped);
          return;
        }
        for (const auto& payload : p.reader.take())
          if (!handle_payload(p, payload)) {
            close_peer(p, net::NetErrorCode::kDropped);
            return;
          }
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      close_peer(p, net::NetErrorCode::kDropped);
      return;
    }
  }

  // Requires state_mutex.  False poisons the connection.
  bool handle_payload(Peer& p, std::span<const std::uint8_t> payload) {
    Envelope env;
    try {
      env = read_envelope(payload);
    } catch (const dtm::CodecError&) {
      counters->frames_corrupt.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (env.kind != FrameKind::kResponse) {
      counters->frames_corrupt.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const auto it = pending.find(env.id);
    p.inflight.erase(env.id);
    if (it == pending.end()) return true;  // caller gave up (deadline)
    net::CallResult<dtm::Response> result;
    try {
      result.response = dtm::decode_response(payload.subspan(env.body_offset));
    } catch (const dtm::CodecError&) {
      counters->frames_corrupt.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    it->second->complete(std::move(result));
    pending.erase(it);
    return true;
  }

  void io_loop() {
    epoll_event events[64];
    while (!stopping.load()) {
      int timeout_ms = 50;
      {
        // Dial pass: connect any peer that queued frames, honoring backoff.
        std::lock_guard lock(state_mutex);
        const auto now = Clock::now();
        for (auto& [id, peer] : peers) {
          maybe_dial(id, *peer);
          if (peer->fd < 0 && !peer->wbuf.empty() && peer->next_dial > now) {
            const auto wait_ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    peer->next_dial - now)
                    .count();
            timeout_ms = std::min<int>(timeout_ms,
                                       std::max<int>(1, (int)wait_ms));
          }
        }
      }
      const int n = epoll_wait(epoll_fd, events, 64, timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == event_fd) {
          std::uint64_t drained;
          [[maybe_unused]] ssize_t r =
              ::read(event_fd, &drained, sizeof drained);
          continue;  // dial + flush happen at the top of the loop
        }
        std::lock_guard lock(state_mutex);
        const auto pit = peer_by_fd.find(fd);
        if (pit == peer_by_fd.end()) continue;
        Peer& p = *peers.at(pit->second);
        if (events[i].events & (EPOLLHUP | EPOLLERR)) {
          if (p.connecting)
            on_dial_failure(p);
          close_peer(p, net::NetErrorCode::kDropped);
          continue;
        }
        if (events[i].events & EPOLLOUT) {
          if (p.connecting) {
            int err = 0;
            socklen_t len = sizeof err;
            getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &err, &len);
            if (err != 0) {
              on_dial_failure(p);
              close_peer(p, net::NetErrorCode::kDropped);
              continue;
            }
            on_connected(p);
          } else {
            flush_writes(p);
          }
        }
        if (peer_by_fd.find(fd) == peer_by_fd.end()) continue;
        if (events[i].events & EPOLLIN) handle_readable(p);
      }
    }
  }

  // ---- caller side ------------------------------------------------------

  /// Queue one encoded request frame for `to`; returns the pending slot.
  std::shared_ptr<Pending> submit(Peer& p, std::uint64_t id,
                                  std::span<const std::uint8_t> payload,
                                  bool response_drop) {
    auto slot = std::make_shared<Pending>();
    slot->response_drop = response_drop;
    {
      std::lock_guard lock(state_mutex);
      pending[id] = slot;
      p.inflight.insert(id);
      append_frame(p.wbuf, payload);
      if (p.fd >= 0 && !p.connecting) flush_writes(p);
    }
    wake();
    return slot;
  }

  /// Wait for `slot` until `deadline`; on expiry the call unregisters
  /// itself and reports kDropped (a timeout: the transport-level analogue
  /// of the simulation's dropped response).
  net::CallResult<dtm::Response> await(net::NodeId to, std::uint64_t id,
                                       const std::shared_ptr<Pending>& slot,
                                       Clock::time_point deadline) {
    std::unique_lock lock(slot->m);
    if (!slot->cv.wait_until(lock, deadline, [&] { return slot->done; })) {
      lock.unlock();
      std::lock_guard state(state_mutex);
      // Re-check under the state lock: the IO thread may have completed
      // the call between our timeout and this point.
      std::lock_guard again(slot->m);
      if (!slot->done) {
        pending.erase(id);
        const auto pit = peers.find(to);
        if (pit != peers.end()) pit->second->inflight.erase(id);
        slot->done = true;
        slot->result.error = net::NetErrorCode::kDropped;
      }
      return slot->result;
    }
    return slot->result;
  }

  // ---- control plane ----------------------------------------------------

  void close_control(Peer& p) {
    if (p.control_fd >= 0) {
      ::close(p.control_fd);
      p.control_fd = -1;
    }
  }

  bool control_connect(Peer& p, Clock::time_point deadline) {
    if (p.control_fd >= 0) return true;
    sockaddr_in addr;
    if (!fill_addr(p.ep, addr)) return false;
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (fd < 0) return false;
    set_nodelay(fd);
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(fd);
      return false;
    }
    if (rc != 0) {
      pollfd pfd{fd, POLLOUT, 0};
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      if (::poll(&pfd, 1, std::max<int>(1, (int)left.count())) <= 0) {
        ::close(fd);
        return false;
      }
      int err = 0;
      socklen_t len = sizeof err;
      getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        ::close(fd);
        return false;
      }
    }
    // Hello: this connection is the management plane.
    std::vector<std::uint8_t> hello;
    append_frame(hello, encode_hello(Channel::kControl, -1));
    if (!control_write(fd, hello, deadline)) {
      ::close(fd);
      return false;
    }
    p.control_fd = fd;
    return true;
  }

  bool control_write(int fd, std::span<const std::uint8_t> bytes,
                     Clock::time_point deadline) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        counters->bytes_sent.fetch_add(static_cast<std::uint64_t>(n),
                                       std::memory_order_relaxed);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{fd, POLLOUT, 0};
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now());
        if (left.count() <= 0 ||
            ::poll(&pfd, 1, std::max<int>(1, (int)left.count())) <= 0)
          return false;
        continue;
      }
      return false;
    }
    return true;
  }

  std::optional<ControlReply> control_roundtrip(Peer& p,
                                                const ControlRequest& req) {
    std::lock_guard lock(p.control_mutex);
    const auto deadline = Clock::now() + config.control_timeout;
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (!control_connect(p, deadline)) return std::nullopt;
      const std::uint64_t id = ++p.control_seq;
      std::vector<std::uint8_t> frame;
      append_frame(frame,
                   make_payload(FrameKind::kControl, id, encode_control(req)));
      if (!control_write(p.control_fd, frame, deadline)) {
        // A dead cached connection (peer restarted): re-dial once.
        close_control(p);
        continue;
      }
      FrameReader reader(config.max_frame);
      std::uint8_t buf[64 * 1024];
      for (;;) {
        for (const auto& payload : reader.take()) {
          try {
            const Envelope env = read_envelope(payload);
            if (env.kind != FrameKind::kControlReply) throw dtm::CodecError("");
            if (env.id != id) continue;  // stale reply from a prior timeout
            return decode_control_reply(
                std::span(payload).subspan(env.body_offset));
          } catch (const dtm::CodecError&) {
            counters->frames_corrupt.fetch_add(1, std::memory_order_relaxed);
            close_control(p);
            return std::nullopt;
          }
        }
        pollfd pfd{p.control_fd, POLLIN, 0};
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now());
        if (left.count() <= 0 ||
            ::poll(&pfd, 1, std::max<int>(1, (int)left.count())) <= 0) {
          close_control(p);
          return std::nullopt;
        }
        const ssize_t n = ::recv(p.control_fd, buf, sizeof buf, 0);
        if (n <= 0) {
          close_control(p);
          if (n == 0 && attempt == 0) break;  // stale conn: retry dial
          return std::nullopt;
        }
        counters->bytes_recv.fetch_add(static_cast<std::uint64_t>(n),
                                       std::memory_order_relaxed);
        if (!reader.feed({buf, static_cast<std::size_t>(n)})) {
          counters->frames_corrupt.fetch_add(1, std::memory_order_relaxed);
          close_control(p);
          return std::nullopt;
        }
      }
    }
    return std::nullopt;
  }
};

TcpTransport::TcpTransport(std::map<net::NodeId, Endpoint> peers,
                           TcpTransportConfig config, std::uint64_t seed)
    : peers_(std::move(peers)), impl_(std::make_unique<Impl>()) {
  (void)seed;  // per-thread fault RNGs self-seed, matching net::Network
  impl_->config = config;
  impl_->counters = &counters_;
  impl_->epoll_fd = epoll_create1(0);
  impl_->event_fd = eventfd(0, EFD_NONBLOCK);
  if (impl_->epoll_fd < 0 || impl_->event_fd < 0)
    throw std::runtime_error("TcpTransport: epoll/eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = impl_->event_fd;
  epoll_ctl(impl_->epoll_fd, EPOLL_CTL_ADD, impl_->event_fd, &ev);
  for (const auto& [id, ep] : peers_) {
    auto peer = std::make_unique<Impl::Peer>();
    peer->ep = ep;
    peer->reader = FrameReader(config.max_frame);
    impl_->peers.emplace(id, std::move(peer));
  }
  impl_->io = std::thread([this] { impl_->io_loop(); });
}

TcpTransport::~TcpTransport() { close(); }

void TcpTransport::close() {
  if (impl_->closed.exchange(true)) return;
  impl_->stopping.store(true);
  impl_->wake();
  impl_->io.join();
  std::lock_guard lock(impl_->state_mutex);
  for (auto& [id, peer] : impl_->peers) {
    impl_->close_peer(*peer, net::NetErrorCode::kDropped);
    impl_->close_control(*peer);
  }
  ::close(impl_->epoll_fd);
  ::close(impl_->event_fd);
}

void TcpTransport::register_local(net::NodeId id, Handler handler) {
  std::lock_guard lock(impl_->state_mutex);
  impl_->locals[id] = std::move(handler);
  impl_->down.erase(id);
}

net::CallResult<dtm::Response> TcpTransport::call(net::NodeId from,
                                                  net::NodeId to,
                                                  const dtm::Request& req) {
  net::require_not_in_handler("call");
  auto results = multicall(from, {to}, req);
  return std::move(results.front());
}

std::vector<net::CallResult<dtm::Response>> TcpTransport::multicall(
    net::NodeId from, const std::vector<net::NodeId>& targets,
    const dtm::Request& req) {
  net::require_not_in_handler("multicall");
  std::vector<net::CallResult<dtm::Response>> out(targets.size());
  std::vector<std::shared_ptr<Impl::Pending>> slots(targets.size());
  std::vector<std::uint64_t> ids(targets.size(), 0);

  // Pre-send fault pass + local dispatch, mirroring the simulation's
  // dispatch phase.  Sends for every remote target are queued before any
  // wait, so the requests genuinely overlap on the wire.
  Nanos extra_total{0};
  std::vector<std::uint8_t> payload;  // encoded once, shared by all targets
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const net::NodeId to = targets[i];
    Impl::Peer* peer = nullptr;
    Handler local;
    bool response_drop = false;
    {
      std::lock_guard lock(impl_->state_mutex);
      if (impl_->down.count(to)) {
        out[i].error = net::NetErrorCode::kNodeDown;
        continue;
      }
      if (impl_->partition_blocked(from, to)) {
        out[i].error = net::NetErrorCode::kPartitioned;
        continue;
      }
      const double fwd_drop = impl_->leg_drop(from, to);
      if (fwd_drop > 0.0 && Impl::fault_rng().bernoulli(fwd_drop)) {
        out[i].error = net::NetErrorCode::kDropped;  // never hits the wire
        continue;
      }
      const double back_drop = impl_->leg_drop(to, from);
      response_drop = back_drop > 0.0 && Impl::fault_rng().bernoulli(back_drop);
      extra_total = std::max(
          extra_total, impl_->leg_extra(from, to) + impl_->leg_extra(to, from));
      const auto lit = impl_->locals.find(to);
      if (lit != impl_->locals.end()) {
        local = lit->second;
      } else if (const auto pit = impl_->peers.find(to);
                 pit != impl_->peers.end()) {
        peer = pit->second.get();
      } else {
        out[i].error = net::NetErrorCode::kNodeDown;  // unknown address
        continue;
      }
    }
    if (local) {
      // Loopback: a handler this endpoint serves itself (coordinator
      // decision queries).  Invoked inline under the same re-entrancy
      // guard a remote server applies.
      counters_.bytes_sent.fetch_add(req.approx_size(),
                                     std::memory_order_relaxed);
      net::HandlerScope scope;
      out[i].response = local(from, req);
      counters_.bytes_recv.fetch_add(out[i].response.approx_size(),
                                     std::memory_order_relaxed);
      if (response_drop) {
        out[i].error = net::NetErrorCode::kDropped;
        out[i].response = {};
      }
      continue;
    }
    const std::uint64_t id =
        impl_->next_request_id.fetch_add(1, std::memory_order_relaxed);
    if (payload.empty())
      payload = encode_request_payload(0, from, req);
    // Patch the request id into the shared payload (envelope byte 1..8).
    std::memcpy(payload.data() + 1, &id, sizeof id);
    ids[i] = id;
    // The response-leg drop was rolled up front; a discarded arrival
    // surfaces as kDropped below — identical lost-ack semantics to the sim.
    slots[i] = impl_->submit(*peer, id, payload, response_drop);
  }

  if (extra_total > Nanos{0}) std::this_thread::sleep_for(extra_total);

  const auto deadline = Clock::now() + impl_->config.call_timeout;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (!slots[i]) continue;
    out[i] = impl_->await(targets[i], ids[i], slots[i], deadline);
    if (slots[i]->response_drop && out[i].ok()) {
      out[i].error = net::NetErrorCode::kDropped;
      out[i].response = {};
    }
  }
  return out;
}

void TcpTransport::set_node_down(net::NodeId id, bool down) {
  std::lock_guard lock(impl_->state_mutex);
  if (down) {
    impl_->down.insert(id);
    const auto it = impl_->peers.find(id);
    if (it != impl_->peers.end())
      impl_->close_peer(*it->second, net::NetErrorCode::kDropped);
  } else {
    impl_->down.erase(id);
    const auto it = impl_->peers.find(id);
    if (it != impl_->peers.end()) {
      it->second->dial_failures = 0;
      it->second->next_dial = {};
    }
  }
}

bool TcpTransport::node_down(net::NodeId id) const {
  std::lock_guard lock(impl_->state_mutex);
  return impl_->down.count(id) > 0;
}

void TcpTransport::set_drop_probability(double p) {
  impl_->drop_probability.store(p);
}
double TcpTransport::drop_probability() const {
  return impl_->drop_probability.load();
}
void TcpTransport::set_extra_latency(Nanos extra) {
  impl_->extra_latency_ns.store(extra.count(), std::memory_order_relaxed);
}
Nanos TcpTransport::extra_latency() const {
  return Nanos{impl_->extra_latency_ns.load(std::memory_order_relaxed)};
}

void TcpTransport::set_partition(
    const std::vector<std::vector<net::NodeId>>& groups) {
  std::lock_guard lock(impl_->state_mutex);
  impl_->partition_groups.clear();
  for (std::size_t g = 0; g < groups.size(); ++g)
    for (const net::NodeId id : groups[g])
      impl_->partition_groups[id] = static_cast<int>(g);
  impl_->partitioned = true;
  // Socket-layer enforcement: kill live connections that now cross the
  // partition (this endpoint's local ids sit in the callers' groups —
  // unlisted ones in group 0, like the simulation).
  for (auto& [id, peer] : impl_->peers) {
    bool blocked = impl_->group_of(id) != 0;
    for (const auto& [lid, h] : impl_->locals)
      if (impl_->group_of(lid) == impl_->group_of(id)) blocked = false;
    if (blocked) impl_->close_peer(*peer, net::NetErrorCode::kDropped);
  }
}

void TcpTransport::clear_partition() {
  std::lock_guard lock(impl_->state_mutex);
  impl_->partition_groups.clear();
  impl_->partitioned = false;
}

bool TcpTransport::partitioned() const {
  std::lock_guard lock(impl_->state_mutex);
  return impl_->partitioned;
}

void TcpTransport::set_link_fault(net::NodeId from, net::NodeId to,
                                  net::LinkFault fault) {
  std::lock_guard lock(impl_->state_mutex);
  impl_->links[link_key(from, to)] = fault;
}
void TcpTransport::clear_link_fault(net::NodeId from, net::NodeId to) {
  std::lock_guard lock(impl_->state_mutex);
  impl_->links.erase(link_key(from, to));
}
void TcpTransport::clear_link_faults() {
  std::lock_guard lock(impl_->state_mutex);
  impl_->links.clear();
}

ControlReply TcpTransport::control(net::NodeId to, const ControlRequest& req) {
  auto reply = try_control(to, req);
  if (!reply)
    throw TransportError("control op " +
                         std::to_string(static_cast<int>(req.op)) +
                         " to node " + std::to_string(to) +
                         " failed (unreachable or timed out)");
  if (!reply->ok)
    throw TransportError("control op " +
                         std::to_string(static_cast<int>(req.op)) +
                         " to node " + std::to_string(to) +
                         " rejected: " + reply->error);
  return *std::move(reply);
}

std::optional<ControlReply> TcpTransport::try_control(
    net::NodeId to, const ControlRequest& req) {
  Impl::Peer* peer = nullptr;
  {
    std::lock_guard lock(impl_->state_mutex);
    const auto it = impl_->peers.find(to);
    if (it == impl_->peers.end()) return std::nullopt;
    peer = it->second.get();
  }
  return impl_->control_roundtrip(*peer, req);
}

}  // namespace acn::transport
