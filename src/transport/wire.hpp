// Frame payload envelope and the control-plane message set.
//
// Every TCP frame payload begins with the same envelope:
//
//   [u8 FrameKind][u64 id][body]
//
// Data plane (id = request id, correlates a response with its in-flight
// call):
//   kHello        body: [u8 Channel][i64 sender node id] — first frame on
//                 every connection; tells the server which plane this
//                 connection belongs to.
//   kRequest      body: [i64 from][codec-encoded dtm::Request]
//   kResponse     body: [codec-encoded dtm::Response]
//
// Control plane (id = control sequence number):
//   kControl      body: encoded ControlRequest
//   kControlReply body: encoded ControlReply
//
// The control plane is the harness's management surface over a replica
// process: seeding, store dumps, contention-window rolls, crash /
// restart / resume orchestration, lease expiry, in-doubt listing, probes
// and shutdown.  It deliberately rides a SEPARATE connection per peer —
// chaos suspends a replica's data plane (connection kills + refusing new
// data hellos) while control keeps answering, modelling the out-of-band
// operator access a real deployment retains into a partitioned node.
// Everything is encoded with the dtm codec primitives, so control
// messages inherit the wire discipline (and CodecError on malformed
// bytes) of the protocol proper.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/dtm/codec.hpp"
#include "src/dtm/server.hpp"

namespace acn::transport {

enum class FrameKind : std::uint8_t {
  kHello = 1,
  kRequest = 2,
  kResponse = 3,
  kControl = 4,
  kControlReply = 5,
};

enum class Channel : std::uint8_t { kData = 0, kControl = 1 };

struct Envelope {
  FrameKind kind;
  std::uint64_t id = 0;
  /// Offset of the kind-specific body within the payload bytes.
  std::size_t body_offset = 0;
};

/// Prepend the envelope to `enc` (call before encoding the body).
void put_envelope(dtm::Encoder& enc, FrameKind kind, std::uint64_t id);

/// Decode the envelope; throws dtm::CodecError on truncation or an unknown
/// kind byte.
Envelope read_envelope(std::span<const std::uint8_t> payload);

// ---- control plane ------------------------------------------------------

enum class ControlOp : std::uint8_t {
  kPing = 1,
  kSeed = 2,          // install entries (version-guarded apply)
  kDump = 3,          // full committed-state snapshot
  kRollWindows = 4,   // roll the contention window
  kClassLevels = 5,   // contention levels for the named classes
  kCrash = 6,         // drop unflushed WAL, optionally wipe disk, suspend
  kRestart = 7,       // reset volatile state, recover from disk
  kResume = 8,        // lift suspension (rejoin the data plane)
  kCheckpoint = 9,    // flush WAL + cut a snapshot
  kExpireLeases = 10, // expire stale prepare leases now
  kIndoubtList = 11,  // cross-shard prepares parked in-doubt
  kProbe = 12,        // cheap replica gauges (leases, protected, ...)
  kShutdown = 13,     // clean process exit
};

/// One object installed by kSeed / returned by kDump.
struct SeedEntry {
  store::ObjectKey key;
  store::Record value;
  store::Version version = 1;
};

struct ControlRequest {
  ControlOp op = ControlOp::kPing;
  std::vector<SeedEntry> entries;       // kSeed
  std::vector<store::ClassId> classes;  // kClassLevels
  bool lose_disk = false;               // kCrash
};

/// Cheap gauges the sim harness reads straight off the Server object.
struct ReplicaProbe {
  std::uint64_t open_leases = 0;
  std::uint64_t protected_keys = 0;
  std::uint64_t wrong_group = 0;
  std::uint64_t indoubt = 0;
  std::uint64_t open_prepares = 0;
};

struct ControlReply {
  bool ok = true;
  std::string error;                    // when !ok
  std::vector<SeedEntry> entries;       // kDump
  std::vector<std::uint64_t> levels;    // kClassLevels
  std::uint64_t count = 0;              // kSeed applied / kExpireLeases expired
  std::vector<dtm::InDoubtTx> indoubt;  // kIndoubtList
  ReplicaProbe probe;                   // kProbe
};

/// Body-only encoders (no envelope — combine with make_payload).
std::vector<std::uint8_t> encode_control(const ControlRequest& req);
std::vector<std::uint8_t> encode_control_reply(const ControlReply& reply);
/// Decode the body of a kControl / kControlReply frame (envelope already
/// stripped).  Throw dtm::CodecError on malformed bytes.
ControlRequest decode_control(std::span<const std::uint8_t> body);
ControlReply decode_control_reply(std::span<const std::uint8_t> body);

// ---- payload assembly ---------------------------------------------------

/// envelope(kind, id) + body, ready for frame framing.
std::vector<std::uint8_t> make_payload(FrameKind kind, std::uint64_t id,
                                       std::span<const std::uint8_t> body);

std::vector<std::uint8_t> encode_hello(Channel channel, std::int64_t node);
std::vector<std::uint8_t> encode_request_payload(std::uint64_t id,
                                                 net::NodeId from,
                                                 const dtm::Request& req);
std::vector<std::uint8_t> encode_response_payload(std::uint64_t id,
                                                  const dtm::Response& res);

}  // namespace acn::transport
