#include "src/transport/frame.hpp"

#include <cstring>
#include <utility>

#include "src/wal/format.hpp"

namespace acn::transport {
namespace {

std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;  // little-endian hosts only, same assumption as the codec
}

void store_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  store_u32(out, static_cast<std::uint32_t>(payload.size()));
  store_u32(out, wal::crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

bool FrameReader::feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) return false;
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  for (;;) {
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < wal::kFrameHeaderBytes) break;
    const std::uint8_t* head = buffer_.data() + consumed_;
    const std::size_t length = load_u32(head);
    if (length > max_payload_) {
      poisoned_ = true;
      return false;
    }
    if (avail < wal::kFrameHeaderBytes + length) break;  // partial frame
    const std::uint32_t want_crc = load_u32(head + 4);
    const std::span<const std::uint8_t> payload{head + wal::kFrameHeaderBytes,
                                                length};
    if (wal::crc32(payload) != want_crc) {
      poisoned_ = true;
      return false;
    }
    ready_.emplace_back(payload.begin(), payload.end());
    consumed_ += wal::kFrameHeaderBytes + length;
  }
  // Compact once the decoded prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return true;
}

std::vector<std::vector<std::uint8_t>> FrameReader::take() {
  return std::exchange(ready_, {});
}

}  // namespace acn::transport
