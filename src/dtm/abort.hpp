// Control-flow exceptions of the transaction runtime.
//
// TxAbort carries *which* objects were found invalid; the closed-nesting
// runtime classifies the abort as partial (all invalid objects were first
// read by the currently executing sub-transaction) or full (some invalid
// object belongs to already-merged history) from exactly this list.
#pragma once

#include <exception>
#include <string>
#include <vector>

#include "src/store/key.hpp"

namespace acn::dtm {

enum class AbortKind {
  kValidation,   // a read object was invalidated by a committed writer
  kBusy,         // persistent protect conflicts / commit contention
  kUnavailable,  // not enough reachable replicas for a quorum
};

/// Secondary classification below AbortKind.  kBusy covers both transient
/// protect conflicts and a phase-two refusal after the prepare lease
/// expired; the contention scheduler treats the latter as a much stronger
/// overload signal (the transaction burned a full 2PC before dying), so the
/// stub tags it here rather than widening AbortKind and every switch on it.
enum class AbortDetail {
  kNone,
  kLeaseExpired,  // commit refused: a member reclaimed the prepare lease
};

class TxAbort : public std::exception {
 public:
  TxAbort(AbortKind kind, std::vector<store::ObjectKey> invalid,
          AbortDetail detail = AbortDetail::kNone)
      : kind_(kind), detail_(detail), invalid_(std::move(invalid)) {
    what_ = "transaction abort: ";
    switch (kind_) {
      case AbortKind::kValidation:
        what_ += "validation failed on " + std::to_string(invalid_.size()) +
                 " object(s)";
        break;
      case AbortKind::kBusy:
        what_ += "objects busy (commit in flight)";
        break;
      case AbortKind::kUnavailable:
        what_ += "quorum unavailable";
        break;
    }
  }

  AbortKind kind() const noexcept { return kind_; }
  AbortDetail detail() const noexcept { return detail_; }
  const std::vector<store::ObjectKey>& invalid() const noexcept {
    return invalid_;
  }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  AbortKind kind_;
  AbortDetail detail_;
  std::vector<store::ObjectKey> invalid_;
  std::string what_;
};

/// Reading an object that exists on no reachable replica is a workload bug
/// (objects are seeded before traffic) — with one exception: on a sharded
/// cluster with owner-scoped seeding, a mispredicted single-shard plan
/// reads a foreign group's key on the home group and lands here.  The key
/// is kept structured so shard::Client can tell that case (key owned by
/// another group → escalate to the cross-shard path) from a real bug.
class ObjectMissing : public std::exception {
 public:
  explicit ObjectMissing(const store::ObjectKey& key)
      : key_(key), what_("object missing: " + store::to_string(key)) {}
  const store::ObjectKey& key() const noexcept { return key_; }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  store::ObjectKey key_;
  std::string what_;
};

}  // namespace acn::dtm
