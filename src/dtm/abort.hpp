// Control-flow exceptions of the transaction runtime.
//
// TxAbort carries *which* objects were found invalid; the closed-nesting
// runtime classifies the abort as partial (all invalid objects were first
// read by the currently executing sub-transaction) or full (some invalid
// object belongs to already-merged history) from exactly this list.
#pragma once

#include <exception>
#include <string>
#include <vector>

#include "src/store/key.hpp"

namespace acn::dtm {

enum class AbortKind {
  kValidation,   // a read object was invalidated by a committed writer
  kBusy,         // persistent protect conflicts / commit contention
  kUnavailable,  // not enough reachable replicas for a quorum
};

class TxAbort : public std::exception {
 public:
  TxAbort(AbortKind kind, std::vector<store::ObjectKey> invalid)
      : kind_(kind), invalid_(std::move(invalid)) {
    what_ = "transaction abort: ";
    switch (kind_) {
      case AbortKind::kValidation:
        what_ += "validation failed on " + std::to_string(invalid_.size()) +
                 " object(s)";
        break;
      case AbortKind::kBusy:
        what_ += "objects busy (commit in flight)";
        break;
      case AbortKind::kUnavailable:
        what_ += "quorum unavailable";
        break;
    }
  }

  AbortKind kind() const noexcept { return kind_; }
  const std::vector<store::ObjectKey>& invalid() const noexcept {
    return invalid_;
  }
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  AbortKind kind_;
  std::vector<store::ObjectKey> invalid_;
  std::string what_;
};

/// Reading an object that exists on no reachable replica is a workload bug
/// (objects are seeded before traffic), not a transient conflict.
class ObjectMissing : public std::exception {
 public:
  explicit ObjectMissing(const store::ObjectKey& key)
      : what_("object missing: " + store::to_string(key)) {}
  const char* what() const noexcept override { return what_.c_str(); }

 private:
  std::string what_;
};

}  // namespace acn::dtm
