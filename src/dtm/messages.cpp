#include "src/dtm/messages.hpp"

namespace acn::dtm {
namespace {

constexpr std::size_t kHeader = 16;  // tx id + opcode + framing
constexpr std::size_t kKeySize = sizeof(ObjectKey);
constexpr std::size_t kCheckSize = sizeof(VersionCheck);

std::size_t records_size(const std::vector<Record>& records) noexcept {
  std::size_t total = 0;
  for (const auto& r : records) total += r.approx_size();
  return total;
}

}  // namespace

std::size_t ReadRequest::approx_size() const noexcept {
  return kHeader + kKeySize + validate.size() * kCheckSize +
         want_contention.size() * sizeof(ClassId);
}

std::size_t BatchedReadRequest::approx_size() const noexcept {
  return kHeader + keys.size() * kKeySize + validate.size() * kCheckSize +
         want_contention.size() * sizeof(ClassId);
}

std::size_t ValidateRequest::approx_size() const noexcept {
  return kHeader + validate.size() * kCheckSize;
}

std::size_t PrepareRequest::approx_size() const noexcept {
  return kHeader + sizeof(group) + read_validate.size() * kCheckSize +
         write_keys.size() * kKeySize +
         participants.size() * sizeof(std::uint32_t) + sizeof(coordinator) +
         records_size(values);
}

std::size_t CommitRequest::approx_size() const noexcept {
  return kHeader + sizeof(group) +
         keys.size() * (kKeySize + sizeof(Version)) + records_size(values);
}

std::size_t AbortRequest::approx_size() const noexcept {
  return kHeader + keys.size() * kKeySize;
}

std::size_t ContentionRequest::approx_size() const noexcept {
  return kHeader + classes.size() * sizeof(ClassId);
}

std::size_t DecisionQuery::approx_size() const noexcept {
  return kHeader + sizeof(group);
}

std::size_t DecisionReply::approx_size() const noexcept {
  return kHeader + keys.size() * (kKeySize + sizeof(Version)) +
         records_size(values);
}

std::size_t ReadResponse::approx_size() const noexcept {
  return kHeader + record.value.approx_size() + sizeof(Version) +
         invalid.size() * kKeySize + contention.size() * sizeof(std::uint64_t);
}

std::size_t BatchedReadResponse::approx_size() const noexcept {
  std::size_t total = kHeader + codes.size();
  for (const auto& record : records)
    total += record.value.approx_size() + sizeof(Version);
  return total + invalid.size() * kKeySize +
         contention.size() * sizeof(std::uint64_t);
}

std::size_t ValidateResponse::approx_size() const noexcept {
  return kHeader + invalid.size() * kKeySize;
}

std::size_t PrepareResponse::approx_size() const noexcept {
  return kHeader + invalid.size() * kKeySize +
         current_versions.size() * sizeof(Version);
}

std::size_t ContentionResponse::approx_size() const noexcept {
  return kHeader + levels.size() * sizeof(std::uint64_t);
}

std::size_t Request::approx_size() const noexcept {
  return std::visit([](const auto& r) { return r.approx_size(); }, payload);
}

std::size_t Response::approx_size() const noexcept {
  return std::visit(
      [](const auto& r) -> std::size_t {
        if constexpr (std::is_same_v<std::decay_t<decltype(r)>, std::monostate>)
          return 8;
        else
          return r.approx_size();
      },
      payload);
}

}  // namespace acn::dtm
