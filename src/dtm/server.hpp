// Quorum server node.
//
// A server holds one full replica (VersionedStore), tracks write contention
// per window (ContentionTracker), and services the six QR-DTM request kinds.
// Handlers run on the calling client thread (see net::Network) and rely on
// the store's internal sharded locking for mutual exclusion, so a server is
// safe under any number of concurrent clients.
#pragma once

#include <atomic>
#include <cstdint>

#include "src/dtm/messages.hpp"
#include "src/net/network.hpp"
#include "src/store/contention_tracker.hpp"
#include "src/store/versioned_store.hpp"

namespace acn::dtm {

struct ServerStats {
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> batched_reads{0};  // batch requests (not keys)
  std::atomic<std::uint64_t> validations_failed{0};
  std::atomic<std::uint64_t> prepares{0};
  std::atomic<std::uint64_t> prepare_busy{0};
  std::atomic<std::uint64_t> prepare_invalid{0};
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> aborts{0};
};

class Server {
 public:
  /// `contention_window_ns` <= 0 disables time-based window rolling (the
  /// harness then rolls explicitly via roll_contention_window()).
  Server(net::NodeId id, std::int64_t contention_window_ns = 0);

  net::NodeId id() const noexcept { return id_; }

  Response handle(net::NodeId from, const Request& request);

  /// Direct store access for initial population and white-box tests.
  store::VersionedStore& store() noexcept { return store_; }
  const store::VersionedStore& store() const noexcept { return store_; }

  store::ContentionTracker& contention() noexcept { return contention_; }
  void roll_contention_window() { contention_.roll(); }

  const ServerStats& stats() const noexcept { return stats_; }

 private:
  ReadResponse on_read(const ReadRequest& req);
  BatchedReadResponse on_batched_read(const BatchedReadRequest& req);
  ValidateResponse on_validate(const ValidateRequest& req);
  PrepareResponse on_prepare(const PrepareRequest& req);
  CommitResponse on_commit(const CommitRequest& req);
  AbortResponse on_abort(const AbortRequest& req);
  ContentionResponse on_contention(const ContentionRequest& req);

  /// Returns the keys among `checks` for which this replica holds a newer
  /// version.  `self` is the transaction doing the validation (objects it
  /// protects itself are not conflicts).  Objects protected by *another*
  /// transaction fail validation too (reported through `busy`): the
  /// in-flight commit may be about to install a newer version, and treating
  /// it as valid would open a write-skew window.
  std::vector<ObjectKey> failed_checks(const std::vector<VersionCheck>& checks,
                                       TxId self, bool& busy) const;

  net::NodeId id_;
  store::VersionedStore store_;
  store::ContentionTracker contention_;
  ServerStats stats_;
};

}  // namespace acn::dtm
