// Quorum server node.
//
// A server holds one full replica (VersionedStore), tracks write contention
// per window (ContentionTracker), and services the six QR-DTM request kinds.
// Handlers run on the calling client thread (see net::Network) and rely on
// the store's internal sharded locking for mutual exclusion, so a server is
// safe under any number of concurrent clients.
//
// Prepare leases (fault tolerance): when `prepare_lease_ns > 0`, every
// successful prepare records a lease — the set of keys it protected plus a
// deadline.  A client that dies (or is partitioned away) between prepare
// and commit can no longer wedge those keys forever: the lease expires
// lazily on the next request, the protections are released, and the
// transaction is remembered as *presumed aborted* — a late commit for it is
// refused with CommitCode::kExpired.  Commits are idempotent (replays ack
// as kDuplicate), so a live client can safely retry phase two through
// request- or response-leg drops.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/dtm/durability.hpp"
#include "src/dtm/messages.hpp"
#include "src/net/network.hpp"
#include "src/obs/obs.hpp"
#include "src/store/contention_tracker.hpp"
#include "src/store/versioned_store.hpp"

namespace acn::dtm {

struct ServerStats {
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> batched_reads{0};  // batch requests (not keys)
  std::atomic<std::uint64_t> validations_failed{0};
  std::atomic<std::uint64_t> prepares{0};
  std::atomic<std::uint64_t> prepare_busy{0};
  std::atomic<std::uint64_t> prepare_invalid{0};
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> commit_replays{0};     // duplicate phase-two acks
  std::atomic<std::uint64_t> commits_rejected{0};   // refused: lease expired
  std::atomic<std::uint64_t> leases_expired{0};     // prepares reclaimed
  std::atomic<std::uint64_t> aborts{0};
  std::atomic<std::uint64_t> wrong_group{0};        // misrouted prepare/commit
  std::atomic<std::uint64_t> indoubt_parked{0};     // cross-shard leases held
  std::atomic<std::uint64_t> indoubt_resolved_commits{0};
  std::atomic<std::uint64_t> indoubt_resolved_aborts{0};
  std::atomic<std::uint64_t> decision_queries{0};
};

/// A cross-shard prepare whose lease expired with the outcome unknown: the
/// protections are still held and only cooperative termination (a commit,
/// an abort, or a DecisionQuery-driven resolution) releases them.
struct InDoubtTx {
  TxId tx = 0;
  std::vector<ObjectKey> keys;
  std::vector<std::uint32_t> participants;
  std::int64_t coordinator = -1;
};

class Server {
 public:
  /// `contention_window_ns` <= 0 disables time-based window rolling (the
  /// harness then rolls explicitly via roll_contention_window()).
  /// `prepare_lease_ns` <= 0 disables prepare-lease expiry (prepared locks
  /// are then only released by an explicit commit or abort).
  Server(net::NodeId id, std::int64_t contention_window_ns = 0,
         std::int64_t prepare_lease_ns = 0);

  net::NodeId id() const noexcept { return id_; }

  /// Quorum group this replica belongs to (sharded clusters; 0 otherwise).
  /// Prepares and commits addressed to another group are refused — a
  /// replica must never protect or install keys its group does not own.
  /// Wire it before traffic starts (not synchronized with handlers).
  void set_group(std::uint32_t group) noexcept { group_ = group; }
  std::uint32_t group() const noexcept { return group_; }

  Response handle(net::NodeId from, const Request& request);

  /// Direct store access for initial population and white-box tests.
  store::VersionedStore& store() noexcept { return store_; }
  const store::VersionedStore& store() const noexcept { return store_; }

  store::ContentionTracker& contention() noexcept { return contention_; }
  void roll_contention_window() { contention_.roll(); }

  /// Release every prepare lease whose deadline has passed (presumed
  /// abort).  Runs lazily at the top of handle(); exposed so a harness can
  /// force final cleanup once traffic stops.  Returns leases reclaimed.
  /// A *cross-shard* prepare (more than one participant group) is never
  /// presumed aborted here: a sibling group may already have been told to
  /// commit, so it parks in-doubt with its protections intact and waits
  /// for cooperative termination.
  std::size_t expire_stale_leases();

  /// Prepared transactions currently holding a live lease.
  std::size_t open_lease_count() const;

  /// Cross-shard transactions parked in-doubt (lease expired, outcome
  /// unknown), with the metadata a resolver needs to terminate them.
  std::vector<InDoubtTx> indoubt_transactions() const;
  std::size_t indoubt_count() const;

  /// Route lease/commit-replay instrumentation into `obs` (null = off).
  void set_obs(obs::Observability* obs) noexcept { obs_ = obs; }

  /// Attach a durability sink (null = volatile replica).  Prepares, commits
  /// and aborts are logged at the moment they bind this replica; the sink
  /// decides when a snapshot is due.  Not synchronized with in-flight
  /// handlers — wire it before traffic starts.
  void set_durability(DurabilitySink* sink) noexcept { durability_ = sink; }

  /// Prepared-but-unresolved transactions (live leases) — what a snapshot
  /// must carry so protections survive log compaction.
  std::vector<OpenPrepare> open_prepares() const;

  /// Simulated crash: drop everything a real process death would lose —
  /// the store, the leases, and the presumed-abort/idempotency memories.
  /// (The contention tracker resets too; it is advisory and refills.)
  void reset_volatile_state();

  /// Install recovered state: seed the committed objects, then re-arm each
  /// open prepare as protections under a fresh lease so the presumed-abort
  /// expiry path (not the reboot) decides those transactions' fate.
  void install_recovered(
      const std::vector<std::pair<ObjectKey, VersionedRecord>>& objects,
      const std::vector<OpenPrepare>& open_prepares);

  const ServerStats& stats() const noexcept { return stats_; }

 private:
  ReadResponse on_read(const ReadRequest& req);
  BatchedReadResponse on_batched_read(const BatchedReadRequest& req);
  ValidateResponse on_validate(const ValidateRequest& req);
  PrepareResponse on_prepare(const PrepareRequest& req);
  CommitResponse on_commit(const CommitRequest& req);
  AbortResponse on_abort(const AbortRequest& req);
  ContentionResponse on_contention(const ContentionRequest& req);
  DecisionReply on_decision(const DecisionQuery& req);

  /// Returns the keys among `checks` for which this replica holds a newer
  /// version.  `self` is the transaction doing the validation (objects it
  /// protects itself are not conflicts).  Objects protected by *another*
  /// transaction fail validation too (reported through `busy`): the
  /// in-flight commit may be about to install a newer version, and treating
  /// it as valid would open a write-skew window.
  std::vector<ObjectKey> failed_checks(const std::vector<VersionCheck>& checks,
                                       TxId self, bool& busy) const;

  // Lease bookkeeping (all require lease_mutex_).
  void record_lease(const OpenPrepare& prepare, std::uint64_t now);
  void remember(std::unordered_set<TxId>& set, std::deque<TxId>& order, TxId tx);

  struct Lease {
    std::vector<ObjectKey> keys;
    std::uint64_t deadline_ns = 0;
    // Cross-shard metadata from the prepare (see PrepareRequest): decides
    // in-doubt eligibility on expiry and carries the redo payload a
    // resolver needs to finish the install without the coordinator.
    std::vector<std::uint32_t> participants;
    std::int64_t coordinator = -1;
    std::vector<Record> values;

    bool cross_shard() const noexcept { return participants.size() > 1; }
  };

  net::NodeId id_;
  std::uint32_t group_ = 0;
  std::int64_t lease_ns_;
  store::VersionedStore store_;
  store::ContentionTracker contention_;
  ServerStats stats_;
  obs::Observability* obs_ = nullptr;
  DurabilitySink* durability_ = nullptr;

  mutable std::mutex lease_mutex_;
  std::unordered_map<TxId, Lease> leases_;
  // Presumed-abort / idempotency memory.  Both are bounded FIFOs: dropping
  // an ancient entry only costs the precise kDuplicate/kExpired verdict for
  // a tx that finished long ago — a replayed apply() is version-guarded and
  // therefore harmless either way.
  std::unordered_set<TxId> expired_;
  std::deque<TxId> expired_order_;
  std::unordered_set<TxId> committed_;
  std::deque<TxId> committed_order_;
  // Cross-shard leases whose deadline passed: still in leases_ (frozen at
  // deadline UINT64_MAX, protections held) until cooperative termination
  // commits or aborts them.  Unbounded by design — an in-doubt transaction
  // must never be forgotten while undecided.
  std::unordered_set<TxId> indoubt_;
  // Earliest lease deadline: handle() skips the lease scan entirely until
  // the clock passes it.
  std::atomic<std::uint64_t> next_expiry_ns_{UINT64_MAX};
};

}  // namespace acn::dtm
