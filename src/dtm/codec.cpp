#include "src/dtm/codec.hpp"

namespace acn::dtm {
namespace {

enum class RequestTag : std::uint8_t {
  kRead = 1,
  kValidate,
  kPrepare,
  kCommit,
  kAbort,
  kContention,
  kBatchedRead,
  kDecisionQuery,
};

enum class ResponseTag : std::uint8_t {
  kNone = 0,
  kRead,
  kValidate,
  kPrepare,
  kCommit,
  kAbort,
  kContention,
  kBatchedRead,
  kDecisionReply,
};

}  // namespace

void Encoder::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8)
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void Encoder::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void Encoder::key(const ObjectKey& k) {
  u32(k.cls);
  u64(k.id);
}

void Encoder::record(const Record& r) {
  u32(static_cast<std::uint32_t>(r.size()));
  for (const store::Field field : r.fields) i64(field);
}

void Encoder::check(const VersionCheck& c) {
  key(c.key);
  u64(c.version);
}

std::uint8_t Decoder::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t Decoder::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8)
    v |= static_cast<std::uint32_t>(bytes_[pos_++]) << shift;
  return v;
}

std::uint64_t Decoder::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8)
    v |= static_cast<std::uint64_t>(bytes_[pos_++]) << shift;
  return v;
}

ObjectKey Decoder::key() {
  ObjectKey k;
  k.cls = u32();
  k.id = u64();
  return k;
}

Record Decoder::record() {
  const std::uint32_t n = u32();
  if (n > remaining()) throw CodecError("record length exceeds buffer");
  Record r;
  r.fields.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) r.fields.push_back(i64());
  return r;
}

VersionCheck Decoder::check() {
  VersionCheck c;
  c.key = key();
  c.version = u64();
  return c;
}

std::vector<std::uint8_t> encode(const Request& request) {
  Encoder e;
  std::visit(
      [&](const auto& req) {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, ReadRequest>) {
          e.u8(static_cast<std::uint8_t>(RequestTag::kRead));
          e.u64(req.tx);
          e.key(req.key);
          e.list(req.validate, [&](const VersionCheck& c) { e.check(c); });
          e.list(req.want_contention, [&](ClassId c) { e.u32(c); });
        } else if constexpr (std::is_same_v<T, BatchedReadRequest>) {
          e.u8(static_cast<std::uint8_t>(RequestTag::kBatchedRead));
          e.u64(req.tx);
          e.list(req.keys, [&](const ObjectKey& k) { e.key(k); });
          e.list(req.validate, [&](const VersionCheck& c) { e.check(c); });
          e.list(req.want_contention, [&](ClassId c) { e.u32(c); });
        } else if constexpr (std::is_same_v<T, ValidateRequest>) {
          e.u8(static_cast<std::uint8_t>(RequestTag::kValidate));
          e.u64(req.tx);
          e.list(req.validate, [&](const VersionCheck& c) { e.check(c); });
        } else if constexpr (std::is_same_v<T, PrepareRequest>) {
          e.u8(static_cast<std::uint8_t>(RequestTag::kPrepare));
          e.u64(req.tx);
          e.u32(req.group);
          e.list(req.read_validate, [&](const VersionCheck& c) { e.check(c); });
          e.list(req.write_keys, [&](const ObjectKey& k) { e.key(k); });
          e.list(req.participants, [&](std::uint32_t g) { e.u32(g); });
          e.u64(static_cast<std::uint64_t>(req.coordinator));
          e.list(req.values, [&](const Record& r) { e.record(r); });
        } else if constexpr (std::is_same_v<T, CommitRequest>) {
          e.u8(static_cast<std::uint8_t>(RequestTag::kCommit));
          e.u64(req.tx);
          e.u32(req.group);
          e.list(req.keys, [&](const ObjectKey& k) { e.key(k); });
          e.list(req.values, [&](const Record& r) { e.record(r); });
          e.list(req.versions, [&](Version v) { e.u64(v); });
        } else if constexpr (std::is_same_v<T, AbortRequest>) {
          e.u8(static_cast<std::uint8_t>(RequestTag::kAbort));
          e.u64(req.tx);
          e.list(req.keys, [&](const ObjectKey& k) { e.key(k); });
        } else if constexpr (std::is_same_v<T, ContentionRequest>) {
          e.u8(static_cast<std::uint8_t>(RequestTag::kContention));
          e.list(req.classes, [&](ClassId c) { e.u32(c); });
        } else if constexpr (std::is_same_v<T, DecisionQuery>) {
          e.u8(static_cast<std::uint8_t>(RequestTag::kDecisionQuery));
          e.u64(req.tx);
          e.u32(req.group);
        }
      },
      request.payload);
  return e.take();
}

std::vector<std::uint8_t> encode(const Response& response) {
  Encoder e;
  std::visit(
      [&](const auto& res) {
        using T = std::decay_t<decltype(res)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          e.u8(static_cast<std::uint8_t>(ResponseTag::kNone));
        } else if constexpr (std::is_same_v<T, ReadResponse>) {
          e.u8(static_cast<std::uint8_t>(ResponseTag::kRead));
          e.u8(static_cast<std::uint8_t>(res.code));
          e.record(res.record.value);
          e.u64(res.record.version);
          e.list(res.invalid, [&](const ObjectKey& k) { e.key(k); });
          e.list(res.contention, [&](std::uint64_t v) { e.u64(v); });
        } else if constexpr (std::is_same_v<T, BatchedReadResponse>) {
          e.u8(static_cast<std::uint8_t>(ResponseTag::kBatchedRead));
          e.list(res.codes,
                 [&](ReadCode c) { e.u8(static_cast<std::uint8_t>(c)); });
          e.list(res.records, [&](const VersionedRecord& r) {
            e.record(r.value);
            e.u64(r.version);
          });
          e.list(res.invalid, [&](const ObjectKey& k) { e.key(k); });
          e.list(res.contention, [&](std::uint64_t v) { e.u64(v); });
        } else if constexpr (std::is_same_v<T, ValidateResponse>) {
          e.u8(static_cast<std::uint8_t>(ResponseTag::kValidate));
          e.list(res.invalid, [&](const ObjectKey& k) { e.key(k); });
          e.boolean(res.busy);
        } else if constexpr (std::is_same_v<T, PrepareResponse>) {
          e.u8(static_cast<std::uint8_t>(ResponseTag::kPrepare));
          e.u8(static_cast<std::uint8_t>(res.code));
          e.list(res.invalid, [&](const ObjectKey& k) { e.key(k); });
          e.list(res.current_versions, [&](Version v) { e.u64(v); });
        } else if constexpr (std::is_same_v<T, CommitResponse>) {
          e.u8(static_cast<std::uint8_t>(ResponseTag::kCommit));
          e.u8(static_cast<std::uint8_t>(res.code));
        } else if constexpr (std::is_same_v<T, AbortResponse>) {
          e.u8(static_cast<std::uint8_t>(ResponseTag::kAbort));
        } else if constexpr (std::is_same_v<T, ContentionResponse>) {
          e.u8(static_cast<std::uint8_t>(ResponseTag::kContention));
          e.list(res.levels, [&](std::uint64_t v) { e.u64(v); });
        } else if constexpr (std::is_same_v<T, DecisionReply>) {
          e.u8(static_cast<std::uint8_t>(ResponseTag::kDecisionReply));
          e.u8(static_cast<std::uint8_t>(res.code));
          e.list(res.keys, [&](const ObjectKey& k) { e.key(k); });
          e.list(res.values, [&](const Record& r) { e.record(r); });
          e.list(res.versions, [&](Version v) { e.u64(v); });
        }
      },
      response.payload);
  return e.take();
}

Request decode_request(std::span<const std::uint8_t> bytes) {
  Decoder d(bytes);
  Request out;
  const auto tag = static_cast<RequestTag>(d.u8());
  switch (tag) {
    case RequestTag::kRead: {
      ReadRequest req;
      req.tx = d.u64();
      req.key = d.key();
      req.validate = d.list<VersionCheck>([&] { return d.check(); });
      req.want_contention = d.list<ClassId>([&] { return d.u32(); });
      out.payload = std::move(req);
      break;
    }
    case RequestTag::kBatchedRead: {
      BatchedReadRequest req;
      req.tx = d.u64();
      req.keys = d.list<ObjectKey>([&] { return d.key(); });
      req.validate = d.list<VersionCheck>([&] { return d.check(); });
      req.want_contention = d.list<ClassId>([&] { return d.u32(); });
      out.payload = std::move(req);
      break;
    }
    case RequestTag::kValidate: {
      ValidateRequest req;
      req.tx = d.u64();
      req.validate = d.list<VersionCheck>([&] { return d.check(); });
      out.payload = std::move(req);
      break;
    }
    case RequestTag::kPrepare: {
      PrepareRequest req;
      req.tx = d.u64();
      req.group = d.u32();
      req.read_validate = d.list<VersionCheck>([&] { return d.check(); });
      req.write_keys = d.list<ObjectKey>([&] { return d.key(); });
      req.participants = d.list<std::uint32_t>([&] { return d.u32(); });
      req.coordinator = static_cast<std::int64_t>(d.u64());
      req.values = d.list<Record>([&] { return d.record(); });
      out.payload = std::move(req);
      break;
    }
    case RequestTag::kCommit: {
      CommitRequest req;
      req.tx = d.u64();
      req.group = d.u32();
      req.keys = d.list<ObjectKey>([&] { return d.key(); });
      req.values = d.list<Record>([&] { return d.record(); });
      req.versions = d.list<Version>([&] { return d.u64(); });
      out.payload = std::move(req);
      break;
    }
    case RequestTag::kAbort: {
      AbortRequest req;
      req.tx = d.u64();
      req.keys = d.list<ObjectKey>([&] { return d.key(); });
      out.payload = std::move(req);
      break;
    }
    case RequestTag::kContention: {
      ContentionRequest req;
      req.classes = d.list<ClassId>([&] { return d.u32(); });
      out.payload = std::move(req);
      break;
    }
    case RequestTag::kDecisionQuery: {
      DecisionQuery req;
      req.tx = d.u64();
      req.group = d.u32();
      out.payload = req;
      break;
    }
    default:
      throw CodecError("unknown request tag");
  }
  if (!d.exhausted()) throw CodecError("trailing bytes after request");
  return out;
}

Response decode_response(std::span<const std::uint8_t> bytes) {
  Decoder d(bytes);
  Response out;
  const auto tag = static_cast<ResponseTag>(d.u8());
  switch (tag) {
    case ResponseTag::kNone:
      out.payload = std::monostate{};
      break;
    case ResponseTag::kRead: {
      ReadResponse res;
      res.code = static_cast<ReadCode>(d.u8());
      res.record.value = d.record();
      res.record.version = d.u64();
      res.invalid = d.list<ObjectKey>([&] { return d.key(); });
      res.contention = d.list<std::uint64_t>([&] { return d.u64(); });
      out.payload = std::move(res);
      break;
    }
    case ResponseTag::kBatchedRead: {
      BatchedReadResponse res;
      res.codes =
          d.list<ReadCode>([&] { return static_cast<ReadCode>(d.u8()); });
      res.records = d.list<VersionedRecord>([&] {
        VersionedRecord r;
        r.value = d.record();
        r.version = d.u64();
        return r;
      });
      res.invalid = d.list<ObjectKey>([&] { return d.key(); });
      res.contention = d.list<std::uint64_t>([&] { return d.u64(); });
      out.payload = std::move(res);
      break;
    }
    case ResponseTag::kValidate: {
      ValidateResponse res;
      res.invalid = d.list<ObjectKey>([&] { return d.key(); });
      res.busy = d.boolean();
      out.payload = std::move(res);
      break;
    }
    case ResponseTag::kPrepare: {
      PrepareResponse res;
      res.code = static_cast<PrepareCode>(d.u8());
      res.invalid = d.list<ObjectKey>([&] { return d.key(); });
      res.current_versions = d.list<Version>([&] { return d.u64(); });
      out.payload = std::move(res);
      break;
    }
    case ResponseTag::kCommit: {
      CommitResponse res;
      res.code = static_cast<CommitCode>(d.u8());
      out.payload = res;
      break;
    }
    case ResponseTag::kAbort:
      out.payload = AbortResponse{};
      break;
    case ResponseTag::kContention: {
      ContentionResponse res;
      res.levels = d.list<std::uint64_t>([&] { return d.u64(); });
      out.payload = std::move(res);
      break;
    }
    case ResponseTag::kDecisionReply: {
      DecisionReply res;
      res.code = static_cast<DecisionCode>(d.u8());
      res.keys = d.list<ObjectKey>([&] { return d.key(); });
      res.values = d.list<Record>([&] { return d.record(); });
      res.versions = d.list<Version>([&] { return d.u64(); });
      out.payload = std::move(res);
      break;
    }
    default:
      throw CodecError("unknown response tag");
  }
  if (!d.exhausted()) throw CodecError("trailing bytes after response");
  return out;
}

Request roundtrip(const Request& request) {
  const auto bytes = encode(request);
  return decode_request(bytes);
}

Response roundtrip(const Response& response) {
  const auto bytes = encode(response);
  return decode_response(bytes);
}

}  // namespace acn::dtm
