// Binary wire codec for the QR-DTM protocol.
//
// The in-process simulation passes message structs by reference, but a
// deployment over real sockets needs every Request/Response to be
// self-contained bytes.  This codec provides that: a compact
// little-endian framing (1 tag byte per variant alternative,
// length-prefixed vectors) with full round-trip fidelity for every
// message type.  The client stub can optionally round-trip every message
// it sends and receives (StubConfig::verify_codec) so the entire test and
// benchmark traffic doubles as codec coverage.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "src/dtm/messages.hpp"

namespace acn::dtm {

/// Raised on malformed or truncated input.
class CodecError : public std::runtime_error {
 public:
  explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only little-endian byte writer.
class Encoder {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void key(const ObjectKey& k);
  void record(const Record& r);
  void check(const VersionCheck& c);

  template <class T, class Fn>
  void list(const std::vector<T>& items, Fn&& each) {
    u32(static_cast<std::uint32_t>(items.size()));
    for (const T& item : items) each(item);
  }

  std::vector<std::uint8_t> take() { return std::move(out_); }
  std::size_t size() const noexcept { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
};

/// Bounds-checked little-endian byte reader.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }

  ObjectKey key();
  Record record();
  VersionCheck check();

  template <class T, class Fn>
  std::vector<T> list(Fn&& each) {
    const std::uint32_t n = u32();
    // Guard against absurd counts from corrupt input.
    if (n > remaining()) throw CodecError("list count exceeds buffer");
    std::vector<T> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(each());
    return out;
  }

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool exhausted() const noexcept { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > bytes_.size()) throw CodecError("truncated message");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

std::vector<std::uint8_t> encode(const Request& request);
std::vector<std::uint8_t> encode(const Response& response);

Request decode_request(std::span<const std::uint8_t> bytes);
Response decode_response(std::span<const std::uint8_t> bytes);

/// encode -> decode; used by the stub's verify mode and tests.
Request roundtrip(const Request& request);
Response roundtrip(const Response& response);

}  // namespace acn::dtm
