// Durability hook for a quorum server.
//
// The server reports protocol decisions through this interface at the
// moment they become binding on this replica:
//
//   * log_prepare — a prepare succeeded: the write set is protected and a
//     lease was recorded.  If the replica dies now, recovery must re-arm
//     the protections so the presumed-abort lease machinery (not a reboot)
//     decides the transaction's fate.
//   * log_commit — phase two applied new versions.  Returns true when the
//     sink has accumulated enough log that the caller should follow up
//     with write_snapshot(); at most one caller is told so per
//     accumulation window, so concurrent committers don't all dump.
//   * log_abort — protections released without installing.
//
// Lease *expiry* is deliberately not logged: presumed abort is a pure
// function of the log (a prepare with no commit/abort after it), so a
// recovering replica re-arms the prepare and lets the lease expire again.
//
// The interface lives in dtm so the server depends on no concrete storage
// backend; src/wal provides the file-backed implementation and the
// harness wires it in per replica.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "src/dtm/messages.hpp"

namespace acn::dtm {

/// A prepared-but-unresolved transaction: its protections must survive a
/// restart until a commit, an abort, or lease expiry settles it.  The
/// cross-shard metadata (participants / coordinator / redo values) survives
/// too, so a recovered replica still knows which prepares must park
/// in-doubt on expiry instead of being presumed aborted.
struct OpenPrepare {
  TxId tx = 0;
  std::vector<ObjectKey> keys;
  std::vector<std::uint32_t> participants;
  std::int64_t coordinator = -1;
  std::vector<Record> values;  // aligned with keys; empty on single-group

  friend bool operator==(const OpenPrepare&, const OpenPrepare&) = default;
};

/// What a snapshot captures: committed state plus in-flight prepares.
struct SnapshotData {
  std::vector<std::pair<ObjectKey, VersionedRecord>> objects;
  std::vector<OpenPrepare> open_prepares;
};

class DurabilitySink {
 public:
  virtual ~DurabilitySink() = default;

  /// The full request is logged (not just tx + keys) because its
  /// cross-shard metadata decides in-doubt eligibility after recovery.
  virtual void log_prepare(const PrepareRequest& prepare) = 0;
  /// True when the caller should follow up with write_snapshot().
  virtual bool log_commit(const CommitRequest& commit) = 0;
  virtual void log_abort(TxId tx, const std::vector<ObjectKey>& keys) = 0;

  /// Persist a snapshot and drop the log records it covers.  The sink
  /// calls `provide` *after* sealing the log prefix the snapshot will
  /// replace, so the provider must return state reflecting every record
  /// logged so far (callers log a commit only after installing it — see
  /// Server::on_commit) — otherwise compaction could delete a record whose
  /// effect the snapshot missed.
  virtual void write_snapshot(
      const std::function<SnapshotData()>& provide) = 0;
};

}  // namespace acn::dtm
