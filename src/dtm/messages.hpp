// QR-DTM wire protocol.
//
// Eight request kinds flow from clients to quorum servers:
//   * Read        — fetch an object from a read quorum; the request carries
//                   the transaction's current read-set versions so servers
//                   perform *incremental validation* on every read, and may
//                   carry a list of object classes whose contention levels
//                   the client wants piggybacked on the response.
//   * BatchedRead — fetch several independent objects in one quorum round.
//                   The Static Module's UnitGraph proves the keys have no
//                   data dependency between their computations, so the reads
//                   can share a round trip; validation and contention
//                   piggybacking work exactly as for Read, with a per-key
//                   result code.
//   * Validate    — stand-alone incremental validation (no fetch).
//   * Prepare     — first phase of two-phase commit on a write quorum:
//                   protect written objects, validate the read-set, report
//                   current versions so the coordinator can pick new ones.
//   * Commit      — second phase: install new versions, release protection,
//                   bump the per-window write counters (contention input).
//                   Idempotent: a replayed commit (the client retrying
//                   through a lost ack) is acknowledged as kDuplicate; a
//                   commit whose prepare lease expired is refused kExpired.
//   * Abort       — release protection without installing.
//   * Contention  — fetch per-class contention levels (Dynamic Module).
//   * DecisionQuery — cooperative termination for cross-shard 2PC: ask a
//                   coordinator's decision record (or a sibling participant
//                   group) what happened to an in-doubt transaction.
//
// Messages are plain structs; the simulated network needs only their
// approximate serialized size, exposed via approx_size().
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "src/store/key.hpp"
#include "src/store/record.hpp"

namespace acn::dtm {

using store::ClassId;
using store::ObjectKey;
using store::Record;
using store::Version;
using store::VersionedRecord;
using TxId = std::uint64_t;

/// One entry of a transaction read-set shipped for incremental validation:
/// "I read `key` at `version`; tell me if you hold something newer."
struct VersionCheck {
  ObjectKey key;
  Version version = 0;

  friend bool operator==(const VersionCheck&, const VersionCheck&) = default;
};

struct ReadRequest {
  TxId tx = 0;
  ObjectKey key;
  std::vector<VersionCheck> validate;
  std::vector<ClassId> want_contention;

  std::size_t approx_size() const noexcept;

  friend bool operator==(const ReadRequest&, const ReadRequest&) = default;
};

struct BatchedReadRequest {
  TxId tx = 0;
  std::vector<ObjectKey> keys;  // deduplicated by the caller
  std::vector<VersionCheck> validate;
  std::vector<ClassId> want_contention;

  std::size_t approx_size() const noexcept;

  friend bool operator==(const BatchedReadRequest&, const BatchedReadRequest&) = default;
};

struct ValidateRequest {
  TxId tx = 0;
  std::vector<VersionCheck> validate;

  std::size_t approx_size() const noexcept;

  friend bool operator==(const ValidateRequest&, const ValidateRequest&) = default;
};

struct PrepareRequest {
  TxId tx = 0;
  std::vector<VersionCheck> read_validate;
  std::vector<ObjectKey> write_keys;  // sorted ascending by the coordinator
  /// Quorum group this prepare is addressed to (sharded clusters).  A
  /// server in a different group refuses with kWrongGroup rather than
  /// protecting keys it does not own — a misrouted prepare must fail
  /// loudly, never half-commit on a foreign replica set.
  std::uint32_t group = 0;

  // ---- cross-shard 2PC metadata (defaults on single-group traffic) ----
  /// Every quorum group participating in the transaction, sorted.  More
  /// than one entry marks the prepare as cross-shard: if its lease expires
  /// the server parks it *in-doubt* (a sibling group may already have been
  /// told to commit) instead of presuming abort.
  std::vector<std::uint32_t> participants;
  /// Network node of the coordinator holding the transaction's decision
  /// record; -1 when there is none.
  std::int64_t coordinator = -1;
  /// Redo payload: the values the transaction will install, aligned with
  /// write_keys.  Carried at prepare time so an in-doubt participant can
  /// still be resolved to commit when the phase-two push never arrives.
  std::vector<Record> values;

  std::size_t approx_size() const noexcept;

  friend bool operator==(const PrepareRequest&, const PrepareRequest&) = default;
};

struct CommitRequest {
  TxId tx = 0;
  std::vector<ObjectKey> keys;
  std::vector<Record> values;     // aligned with keys
  std::vector<Version> versions;  // aligned with keys
  /// See PrepareRequest::group; a mismatched commit is refused kExpired
  /// (nothing was, or will be, installed here).
  std::uint32_t group = 0;

  std::size_t approx_size() const noexcept;

  friend bool operator==(const CommitRequest&, const CommitRequest&) = default;
};

struct AbortRequest {
  TxId tx = 0;
  std::vector<ObjectKey> keys;

  std::size_t approx_size() const noexcept;

  friend bool operator==(const AbortRequest&, const AbortRequest&) = default;
};

struct ContentionRequest {
  std::vector<ClassId> classes;

  std::size_t approx_size() const noexcept;

  friend bool operator==(const ContentionRequest&, const ContentionRequest&) = default;
};

/// Cooperative-termination query: "what happened to transaction `tx`?"
/// Sent on behalf of an in-doubt participant to the coordinator's decision
/// record and, when the coordinator is unreachable, to sibling participant
/// groups.  Travels through the same codec and network as every other
/// message, so chaos drops and partitions apply to it too.
struct DecisionQuery {
  TxId tx = 0;
  /// The group whose phase-two payload the asker wants: a coordinator
  /// answering kCommitted fills the reply with the stored CommitRequest
  /// payload for exactly this group.
  std::uint32_t group = 0;

  std::size_t approx_size() const noexcept;

  friend bool operator==(const DecisionQuery&, const DecisionQuery&) = default;
};

enum class DecisionCode : std::uint8_t {
  kUnknown = 0,  // no record of the transaction here
  kInDoubt,      // prepared here, outcome not yet known
  kCommitted,    // decided commit (authoritative)
  kAborted,      // decided or presumed abort (authoritative)
};

struct DecisionReply {
  DecisionCode code = DecisionCode::kUnknown;
  /// On kCommitted from a decision record: the phase-two payload for the
  /// queried group.  On kInDoubt from a participant: its own pending
  /// prepare (keys, redo values, locally proposed install versions), so a
  /// resolver can finish the install once a sibling proves the decision.
  std::vector<ObjectKey> keys;
  std::vector<Record> values;      // aligned with keys
  std::vector<Version> versions;   // aligned with keys

  std::size_t approx_size() const noexcept;

  friend bool operator==(const DecisionReply&, const DecisionReply&) = default;
};

enum class ReadCode : std::uint8_t {
  kOk = 0,
  kMissing,
  kBusy,     // object protected by an in-flight commit
  kInvalid,  // incremental validation failed (see `invalid`)
};

struct ReadResponse {
  ReadCode code = ReadCode::kMissing;
  VersionedRecord record;
  std::vector<ObjectKey> invalid;          // failed validation entries
  std::vector<std::uint64_t> contention;   // aligned with want_contention

  std::size_t approx_size() const noexcept;

  friend bool operator==(const ReadResponse&, const ReadResponse&) = default;
};

struct BatchedReadResponse {
  /// Per-key result, aligned with the request's `keys`.  On kInvalid every
  /// entry carries kInvalid and `invalid` lists the refuted checks (the
  /// whole round is poisoned, exactly like a single Read).
  std::vector<ReadCode> codes;
  std::vector<VersionedRecord> records;    // aligned with keys; empty on non-kOk
  std::vector<ObjectKey> invalid;          // failed validation entries
  std::vector<std::uint64_t> contention;   // aligned with want_contention

  std::size_t approx_size() const noexcept;

  friend bool operator==(const BatchedReadResponse&, const BatchedReadResponse&) = default;
};

struct ValidateResponse {
  std::vector<ObjectKey> invalid;  // empty => all still valid
  /// A checked object is protected by an in-flight commit: this replica can
  /// neither confirm nor refute the check — the caller must retry.  Passing
  /// silently here would let a reader commit an inconsistent snapshot (the
  /// committing writer's other keys may already be visible).
  bool busy = false;

  std::size_t approx_size() const noexcept;

  friend bool operator==(const ValidateResponse&, const ValidateResponse&) = default;
};

enum class PrepareCode : std::uint8_t {
  kOk = 0,
  kBusy,        // failed to protect (or validated against a protected object)
  kInvalid,     // read-set validation failed
  kWrongGroup,  // addressed to a different quorum group (routing bug)
};

struct PrepareResponse {
  PrepareCode code = PrepareCode::kOk;
  std::vector<ObjectKey> invalid;
  std::vector<Version> current_versions;  // aligned with write_keys, on kOk

  std::size_t approx_size() const noexcept;

  friend bool operator==(const PrepareResponse&, const PrepareResponse&) = default;
};

enum class CommitCode : std::uint8_t {
  kApplied = 0,  // lease held (or leases disabled): values installed
  kDuplicate,    // this tx already committed here; replay acknowledged
  kExpired,      // prepare lease expired (presumed abort): nothing installed
};

struct CommitResponse {
  CommitCode code = CommitCode::kApplied;

  bool ok() const noexcept { return code != CommitCode::kExpired; }

  std::size_t approx_size() const noexcept { return 8; }

  friend bool operator==(const CommitResponse&, const CommitResponse&) = default;
};

struct AbortResponse {
  std::size_t approx_size() const noexcept { return 8; }

  friend bool operator==(const AbortResponse&, const AbortResponse&) = default;
};

struct ContentionResponse {
  std::vector<std::uint64_t> levels;  // aligned with request classes

  std::size_t approx_size() const noexcept;

  friend bool operator==(const ContentionResponse&, const ContentionResponse&) = default;
};

struct Request {
  std::variant<ReadRequest, ValidateRequest, PrepareRequest, CommitRequest,
               AbortRequest, ContentionRequest, BatchedReadRequest,
               DecisionQuery>
      payload;

  std::size_t approx_size() const noexcept;

  friend bool operator==(const Request&, const Request&) = default;
};

struct Response {
  std::variant<std::monostate, ReadResponse, ValidateResponse, PrepareResponse,
               CommitResponse, AbortResponse, ContentionResponse,
               BatchedReadResponse, DecisionReply>
      payload;

  std::size_t approx_size() const noexcept;

  friend bool operator==(const Response&, const Response&) = default;
};

}  // namespace acn::dtm
