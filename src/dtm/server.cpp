#include "src/dtm/server.hpp"

#include <algorithm>

#include "src/common/clock.hpp"

namespace acn::dtm {
namespace {

// FIFO cap on the presumed-abort / idempotency memories.  Generously above
// any plausible in-flight transaction count; see server.hpp for why eviction
// is safe.
constexpr std::size_t kMaxRememberedTx = 1 << 16;

}  // namespace

Server::Server(net::NodeId id, std::int64_t contention_window_ns,
               std::int64_t prepare_lease_ns)
    : id_(id), lease_ns_(prepare_lease_ns), contention_(contention_window_ns) {}

Response Server::handle(net::NodeId /*from*/, const Request& request) {
  expire_stale_leases();
  Response out;
  std::visit(
      [&](const auto& req) {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, ReadRequest>)
          out.payload = on_read(req);
        else if constexpr (std::is_same_v<T, BatchedReadRequest>)
          out.payload = on_batched_read(req);
        else if constexpr (std::is_same_v<T, ValidateRequest>)
          out.payload = on_validate(req);
        else if constexpr (std::is_same_v<T, PrepareRequest>)
          out.payload = on_prepare(req);
        else if constexpr (std::is_same_v<T, CommitRequest>)
          out.payload = on_commit(req);
        else if constexpr (std::is_same_v<T, AbortRequest>)
          out.payload = on_abort(req);
        else if constexpr (std::is_same_v<T, ContentionRequest>)
          out.payload = on_contention(req);
        else if constexpr (std::is_same_v<T, DecisionQuery>)
          out.payload = on_decision(req);
      },
      request.payload);
  return out;
}

std::size_t Server::expire_stale_leases() {
  if (lease_ns_ <= 0) return 0;
  const std::uint64_t now = now_ns();
  if (now < next_expiry_ns_.load(std::memory_order_relaxed)) return 0;

  std::vector<std::pair<TxId, Lease>> victims;
  std::size_t parked = 0;
  {
    std::lock_guard<std::mutex> guard(lease_mutex_);
    std::uint64_t next = UINT64_MAX;
    for (auto it = leases_.begin(); it != leases_.end();) {
      if (it->second.deadline_ns <= now) {
        if (it->second.cross_shard()) {
          // A sibling group may already have been told to commit, so this
          // prepare cannot be presumed aborted.  Park it in-doubt: freeze
          // the lease, keep the protections, wait for termination.
          it->second.deadline_ns = UINT64_MAX;
          if (indoubt_.insert(it->first).second) ++parked;
          ++it;
          continue;
        }
        remember(expired_, expired_order_, it->first);
        victims.emplace_back(it->first, std::move(it->second));
        it = leases_.erase(it);
      } else {
        next = std::min(next, it->second.deadline_ns);
        ++it;
      }
    }
    next_expiry_ns_.store(next, std::memory_order_relaxed);
  }
  if (parked != 0)
    stats_.indoubt_parked.fetch_add(parked, std::memory_order_relaxed);
  if (victims.empty()) return 0;

  // Unprotect outside the lease lock: the store has its own sharded locking
  // and unprotect(tx) is a no-op if the tx no longer holds the key.
  for (const auto& [tx, lease] : victims)
    for (const auto& key : lease.keys) store_.unprotect(key, tx);

  stats_.leases_expired.fetch_add(victims.size(), std::memory_order_relaxed);
  if (obs_ != nullptr) obs_->rpc_lease_expired.add(victims.size());
  return victims.size();
}

std::size_t Server::open_lease_count() const {
  std::lock_guard<std::mutex> guard(lease_mutex_);
  return leases_.size();
}

std::vector<OpenPrepare> Server::open_prepares() const {
  std::lock_guard<std::mutex> guard(lease_mutex_);
  std::vector<OpenPrepare> out;
  out.reserve(leases_.size());
  for (const auto& [tx, lease] : leases_)
    out.push_back(
        {tx, lease.keys, lease.participants, lease.coordinator, lease.values});
  return out;
}

std::vector<InDoubtTx> Server::indoubt_transactions() const {
  std::lock_guard<std::mutex> guard(lease_mutex_);
  std::vector<InDoubtTx> out;
  out.reserve(indoubt_.size());
  for (const TxId tx : indoubt_) {
    const auto it = leases_.find(tx);
    if (it == leases_.end()) continue;
    out.push_back(
        {tx, it->second.keys, it->second.participants, it->second.coordinator});
  }
  return out;
}

std::size_t Server::indoubt_count() const {
  std::lock_guard<std::mutex> guard(lease_mutex_);
  return indoubt_.size();
}

void Server::reset_volatile_state() {
  store_.clear();
  std::lock_guard<std::mutex> guard(lease_mutex_);
  leases_.clear();
  expired_.clear();
  expired_order_.clear();
  committed_.clear();
  committed_order_.clear();
  indoubt_.clear();
  next_expiry_ns_.store(UINT64_MAX, std::memory_order_relaxed);
}

void Server::install_recovered(
    const std::vector<std::pair<ObjectKey, VersionedRecord>>& objects,
    const std::vector<OpenPrepare>& open_prepares) {
  for (const auto& [key, rec] : objects)
    store_.seed(key, rec.value, rec.version);
  const std::uint64_t now = now_ns();
  for (const auto& prepare : open_prepares) {
    for (const auto& key : prepare.keys) store_.try_protect(key, prepare.tx);
    // The lease clock restarts at recovery time: the original deadline was
    // volatile, and presumed abort only needs *a* bounded wait, not the
    // original one.
    record_lease(prepare, now);
  }
}

void Server::record_lease(const OpenPrepare& prepare, std::uint64_t now) {
  std::lock_guard<std::mutex> guard(lease_mutex_);
  // A fresh prepare supersedes any earlier presumed abort of the same tx:
  // the client went through its own abort/retry and re-acquired protection.
  expired_.erase(prepare.tx);
  indoubt_.erase(prepare.tx);
  Lease& lease = leases_[prepare.tx];
  lease.keys = prepare.keys;
  lease.participants = prepare.participants;
  lease.coordinator = prepare.coordinator;
  lease.values = prepare.values;
  if (lease_ns_ > 0) {
    lease.deadline_ns = now + static_cast<std::uint64_t>(lease_ns_);
    std::uint64_t prev = next_expiry_ns_.load(std::memory_order_relaxed);
    while (prev > lease.deadline_ns &&
           !next_expiry_ns_.compare_exchange_weak(prev, lease.deadline_ns,
                                                  std::memory_order_relaxed)) {
    }
  } else {
    lease.deadline_ns = UINT64_MAX;
  }
}

void Server::remember(std::unordered_set<TxId>& set, std::deque<TxId>& order,
                      TxId tx) {
  if (!set.insert(tx).second) return;
  order.push_back(tx);
  while (order.size() > kMaxRememberedTx) {
    set.erase(order.front());
    order.pop_front();
  }
}

std::vector<ObjectKey> Server::failed_checks(
    const std::vector<VersionCheck>& checks, TxId self, bool& busy) const {
  std::vector<ObjectKey> invalid;
  for (const auto& check : checks) {
    const auto result = store_.read_validating(check.key, self);
    switch (result.status) {
      case store::ReadStatus::kOk:
        if (result.record.version > check.version) invalid.push_back(check.key);
        break;
      case store::ReadStatus::kProtected:
        // A commit is installing this object right now.  If the last
        // committed version already refutes the check, say so; otherwise
        // the checker's version may be outdated a microsecond from now and
        // only a retry can tell.
        if (result.record.version > check.version)
          invalid.push_back(check.key);
        else
          busy = true;
        break;
      case store::ReadStatus::kMissing:
        // This replica is stale (never saw the object) — it cannot refute
        // the check; the quorum intersection guarantees some replica can.
        break;
    }
  }
  return invalid;
}

ReadResponse Server::on_read(const ReadRequest& req) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  ReadResponse res;

  bool busy = false;
  res.invalid = failed_checks(req.validate, req.tx, busy);
  if (!res.invalid.empty()) {
    stats_.validations_failed.fetch_add(1, std::memory_order_relaxed);
    res.code = ReadCode::kInvalid;
    return res;
  }
  if (busy) {
    // A previously-read object is protected by a commit in flight: serving
    // the new value now could pair it with the (possibly about-to-change)
    // old one in the caller's snapshot.  Make the caller retry after the
    // commit settles, when validation can give a definite answer.
    res.code = ReadCode::kBusy;
    return res;
  }

  const auto result = store_.read(req.key);
  switch (result.status) {
    case store::ReadStatus::kOk:
      res.code = ReadCode::kOk;
      res.record = result.record;
      break;
    case store::ReadStatus::kProtected:
      res.code = ReadCode::kBusy;
      break;
    case store::ReadStatus::kMissing:
      res.code = ReadCode::kMissing;
      break;
  }

  if (!req.want_contention.empty())
    res.contention = contention_.class_levels(req.want_contention);
  return res;
}

BatchedReadResponse Server::on_batched_read(const BatchedReadRequest& req) {
  stats_.batched_reads.fetch_add(1, std::memory_order_relaxed);
  stats_.reads.fetch_add(req.keys.size(), std::memory_order_relaxed);
  BatchedReadResponse res;

  // Incremental validation runs once for the whole batch: a refuted check
  // poisons every key (same rule as a single Read — the caller's snapshot
  // is broken regardless of which key it was about to fetch), and a
  // protected check makes the whole round inconclusive.
  bool busy = false;
  res.invalid = failed_checks(req.validate, req.tx, busy);
  if (!res.invalid.empty()) {
    stats_.validations_failed.fetch_add(1, std::memory_order_relaxed);
    res.codes.assign(req.keys.size(), ReadCode::kInvalid);
    return res;
  }
  if (busy) {
    res.codes.assign(req.keys.size(), ReadCode::kBusy);
    return res;
  }

  res.codes.reserve(req.keys.size());
  res.records.resize(req.keys.size());
  for (std::size_t i = 0; i < req.keys.size(); ++i) {
    const auto result = store_.read(req.keys[i]);
    switch (result.status) {
      case store::ReadStatus::kOk:
        res.codes.push_back(ReadCode::kOk);
        res.records[i] = result.record;
        break;
      case store::ReadStatus::kProtected:
        res.codes.push_back(ReadCode::kBusy);
        break;
      case store::ReadStatus::kMissing:
        res.codes.push_back(ReadCode::kMissing);
        break;
    }
  }

  if (!req.want_contention.empty())
    res.contention = contention_.class_levels(req.want_contention);
  return res;
}

ValidateResponse Server::on_validate(const ValidateRequest& req) {
  ValidateResponse res;
  res.invalid = failed_checks(req.validate, req.tx, res.busy);
  if (!res.invalid.empty())
    stats_.validations_failed.fetch_add(1, std::memory_order_relaxed);
  return res;
}

PrepareResponse Server::on_prepare(const PrepareRequest& req) {
  stats_.prepares.fetch_add(1, std::memory_order_relaxed);
  PrepareResponse res;

  if (req.group != group_) {
    // Misrouted prepare (a stale shard map or a routing bug): refuse before
    // touching the store — protecting keys this group does not own would
    // let a transaction "commit" against replicas no reader ever consults.
    stats_.wrong_group.fetch_add(1, std::memory_order_relaxed);
    res.code = PrepareCode::kWrongGroup;
    return res;
  }

  // Phase 1a: protect the write set.  Keys arrive sorted from the
  // coordinator; try_protect fails fast, so no deadlock is possible.
  std::vector<ObjectKey> protected_keys;
  protected_keys.reserve(req.write_keys.size());
  for (const auto& key : req.write_keys) {
    if (!store_.try_protect(key, req.tx)) {
      for (const auto& undo : protected_keys) store_.unprotect(undo, req.tx);
      stats_.prepare_busy.fetch_add(1, std::memory_order_relaxed);
      res.code = PrepareCode::kBusy;
      return res;
    }
    protected_keys.push_back(key);
  }

  // Phase 1b: validate the read set under protection.
  bool busy = false;
  res.invalid = failed_checks(req.read_validate, req.tx, busy);
  if (!res.invalid.empty() || busy) {
    for (const auto& undo : protected_keys) store_.unprotect(undo, req.tx);
    if (!res.invalid.empty()) {
      stats_.prepare_invalid.fetch_add(1, std::memory_order_relaxed);
      res.code = PrepareCode::kInvalid;
    } else {
      stats_.prepare_busy.fetch_add(1, std::memory_order_relaxed);
      res.code = PrepareCode::kBusy;
    }
    return res;
  }

  // The lease is recorded even when expiry is disabled: on_commit needs the
  // prepared/committed distinction to classify phase-two replays.
  record_lease(
      {req.tx, req.write_keys, req.participants, req.coordinator, req.values},
      now_ns());
  // Logged only once the prepare is binding: recovery re-arms exactly the
  // protections that were held, and the fresh lease expires them if the
  // coordinator never comes back.  The full request is logged so cross-shard
  // metadata (in-doubt eligibility, redo payload) survives a restart.
  if (durability_ != nullptr) durability_->log_prepare(req);

  res.code = PrepareCode::kOk;
  res.current_versions.reserve(req.write_keys.size());
  for (const auto& key : req.write_keys)
    res.current_versions.push_back(store_.version_of(key).value_or(0));
  return res;
}

CommitResponse Server::on_commit(const CommitRequest& req) {
  stats_.commits.fetch_add(1, std::memory_order_relaxed);

  if (req.group != group_) {
    // Nothing was prepared here (on_prepare refuses group mismatches), so
    // kExpired states the truth: this install did not and will not happen.
    stats_.wrong_group.fetch_add(1, std::memory_order_relaxed);
    return CommitResponse{CommitCode::kExpired};
  }

  bool replay = false;
  bool was_indoubt = false;
  {
    std::lock_guard<std::mutex> guard(lease_mutex_);
    if (expired_.count(req.tx) != 0) {
      // Presumed abort: the prepare lease ran out and the protections were
      // already released — another transaction may have prepared these keys
      // since.  Installing now could stomp its protected snapshot, so the
      // late commit is refused outright.
      stats_.commits_rejected.fetch_add(1, std::memory_order_relaxed);
      if (obs_ != nullptr) obs_->rpc_commit_rejected.add();
      return CommitResponse{CommitCode::kExpired};
    }
    replay = committed_.count(req.tx) != 0;
    if (!replay) remember(committed_, committed_order_, req.tx);
    leases_.erase(req.tx);
    was_indoubt = indoubt_.erase(req.tx) != 0;
  }
  if (was_indoubt) {
    // A late phase-two push (or a resolver acting on a decision record)
    // terminated a parked in-doubt prepare on the commit side.
    stats_.indoubt_resolved_commits.fetch_add(1, std::memory_order_relaxed);
    if (obs_ != nullptr) obs_->indoubt_resolved_commit.add();
  }

  const std::uint64_t now = now_ns();
  for (std::size_t i = 0; i < req.keys.size(); ++i) {
    // apply() is version-guarded, so re-installing on a replay is a no-op;
    // the contention bump must not double-count, hence the replay gate.
    store_.apply(req.keys[i], req.values[i], req.versions[i], req.tx);
    if (!replay) contention_.on_write(req.keys[i], now);
  }
  if (replay) {
    // Only the local stat: the sender already counted the replay round into
    // obs (rpc.commit.replayed), so bumping here would double-count.
    stats_.commit_replays.fetch_add(1, std::memory_order_relaxed);
    return CommitResponse{CommitCode::kDuplicate};
  }

  if (durability_ != nullptr) {
    // Logged *after* install so that when the sink seals a log prefix for
    // snapshotting, every record in the prefix is already in the store —
    // the invariant DurabilitySink::write_snapshot relies on.  The ack-
    // before-durable window this opens is the group-commit window the
    // rejoin delta catch-up already covers.
    if (durability_->log_commit(req))
      durability_->write_snapshot([this] {
        return SnapshotData{store_.snapshot(), open_prepares()};
      });
  }
  return CommitResponse{CommitCode::kApplied};
}

AbortResponse Server::on_abort(const AbortRequest& req) {
  stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  bool was_prepared = false;
  bool was_indoubt = false;
  {
    std::lock_guard<std::mutex> guard(lease_mutex_);
    const auto it = leases_.find(req.tx);
    if (it != leases_.end()) {
      was_prepared = true;
      // A cross-shard abort is remembered: a sibling group's DecisionQuery
      // treats kAborted as authoritative, so the answer must outlive the
      // lease itself.
      if (it->second.cross_shard()) remember(expired_, expired_order_, req.tx);
      leases_.erase(it);
    }
    was_indoubt = indoubt_.erase(req.tx) != 0;
  }
  for (const auto& key : req.keys) store_.unprotect(key, req.tx);
  if (was_indoubt) {
    stats_.indoubt_resolved_aborts.fetch_add(1, std::memory_order_relaxed);
    if (obs_ != nullptr) obs_->indoubt_resolved_abort.add();
  }
  // Only a prepared tx left a log record to cancel; an abort that merely
  // cleans up a failed prepare has nothing recovery could misread.
  if (was_prepared && durability_ != nullptr)
    durability_->log_abort(req.tx, req.keys);
  return {};
}

ContentionResponse Server::on_contention(const ContentionRequest& req) {
  contention_.maybe_roll(now_ns());
  ContentionResponse res;
  res.levels = contention_.class_levels(req.classes);
  return res;
}

DecisionReply Server::on_decision(const DecisionQuery& req) {
  stats_.decision_queries.fetch_add(1, std::memory_order_relaxed);
  if (obs_ != nullptr) obs_->indoubt_queries.add();
  DecisionReply res;
  std::lock_guard<std::mutex> guard(lease_mutex_);
  if (committed_.count(req.tx) != 0) {
    res.code = DecisionCode::kCommitted;
    return res;
  }
  if (expired_.count(req.tx) != 0) {
    res.code = DecisionCode::kAborted;
    return res;
  }
  const auto it = leases_.find(req.tx);
  if (it == leases_.end()) {
    res.code = DecisionCode::kUnknown;
    return res;
  }
  // Still prepared here (live lease or parked in-doubt).  Ship the redo
  // payload plus locally-proposed install versions so a resolver that
  // learns the global outcome is commit can finish the install without
  // the coordinator's phase-two message.
  res.code = DecisionCode::kInDoubt;
  res.keys = it->second.keys;
  res.values = it->second.values;
  res.versions.reserve(it->second.keys.size());
  for (const auto& key : it->second.keys)
    res.versions.push_back(store_.version_of(key).value_or(0) + 1);
  return res;
}

}  // namespace acn::dtm
