#include "src/dtm/server.hpp"

#include <algorithm>

#include "src/common/clock.hpp"

namespace acn::dtm {

Server::Server(net::NodeId id, std::int64_t contention_window_ns)
    : id_(id), contention_(contention_window_ns) {}

Response Server::handle(net::NodeId /*from*/, const Request& request) {
  Response out;
  std::visit(
      [&](const auto& req) {
        using T = std::decay_t<decltype(req)>;
        if constexpr (std::is_same_v<T, ReadRequest>)
          out.payload = on_read(req);
        else if constexpr (std::is_same_v<T, BatchedReadRequest>)
          out.payload = on_batched_read(req);
        else if constexpr (std::is_same_v<T, ValidateRequest>)
          out.payload = on_validate(req);
        else if constexpr (std::is_same_v<T, PrepareRequest>)
          out.payload = on_prepare(req);
        else if constexpr (std::is_same_v<T, CommitRequest>)
          out.payload = on_commit(req);
        else if constexpr (std::is_same_v<T, AbortRequest>)
          out.payload = on_abort(req);
        else if constexpr (std::is_same_v<T, ContentionRequest>)
          out.payload = on_contention(req);
      },
      request.payload);
  return out;
}

std::vector<ObjectKey> Server::failed_checks(
    const std::vector<VersionCheck>& checks, TxId self, bool& busy) const {
  std::vector<ObjectKey> invalid;
  for (const auto& check : checks) {
    const auto result = store_.read_validating(check.key, self);
    switch (result.status) {
      case store::ReadStatus::kOk:
        if (result.record.version > check.version) invalid.push_back(check.key);
        break;
      case store::ReadStatus::kProtected:
        // A commit is installing this object right now.  If the last
        // committed version already refutes the check, say so; otherwise
        // the checker's version may be outdated a microsecond from now and
        // only a retry can tell.
        if (result.record.version > check.version)
          invalid.push_back(check.key);
        else
          busy = true;
        break;
      case store::ReadStatus::kMissing:
        // This replica is stale (never saw the object) — it cannot refute
        // the check; the quorum intersection guarantees some replica can.
        break;
    }
  }
  return invalid;
}

ReadResponse Server::on_read(const ReadRequest& req) {
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  ReadResponse res;

  bool busy = false;
  res.invalid = failed_checks(req.validate, req.tx, busy);
  if (!res.invalid.empty()) {
    stats_.validations_failed.fetch_add(1, std::memory_order_relaxed);
    res.code = ReadCode::kInvalid;
    return res;
  }
  if (busy) {
    // A previously-read object is protected by a commit in flight: serving
    // the new value now could pair it with the (possibly about-to-change)
    // old one in the caller's snapshot.  Make the caller retry after the
    // commit settles, when validation can give a definite answer.
    res.code = ReadCode::kBusy;
    return res;
  }

  const auto result = store_.read(req.key);
  switch (result.status) {
    case store::ReadStatus::kOk:
      res.code = ReadCode::kOk;
      res.record = result.record;
      break;
    case store::ReadStatus::kProtected:
      res.code = ReadCode::kBusy;
      break;
    case store::ReadStatus::kMissing:
      res.code = ReadCode::kMissing;
      break;
  }

  if (!req.want_contention.empty())
    res.contention = contention_.class_levels(req.want_contention);
  return res;
}

BatchedReadResponse Server::on_batched_read(const BatchedReadRequest& req) {
  stats_.batched_reads.fetch_add(1, std::memory_order_relaxed);
  stats_.reads.fetch_add(req.keys.size(), std::memory_order_relaxed);
  BatchedReadResponse res;

  // Incremental validation runs once for the whole batch: a refuted check
  // poisons every key (same rule as a single Read — the caller's snapshot
  // is broken regardless of which key it was about to fetch), and a
  // protected check makes the whole round inconclusive.
  bool busy = false;
  res.invalid = failed_checks(req.validate, req.tx, busy);
  if (!res.invalid.empty()) {
    stats_.validations_failed.fetch_add(1, std::memory_order_relaxed);
    res.codes.assign(req.keys.size(), ReadCode::kInvalid);
    return res;
  }
  if (busy) {
    res.codes.assign(req.keys.size(), ReadCode::kBusy);
    return res;
  }

  res.codes.reserve(req.keys.size());
  res.records.resize(req.keys.size());
  for (std::size_t i = 0; i < req.keys.size(); ++i) {
    const auto result = store_.read(req.keys[i]);
    switch (result.status) {
      case store::ReadStatus::kOk:
        res.codes.push_back(ReadCode::kOk);
        res.records[i] = result.record;
        break;
      case store::ReadStatus::kProtected:
        res.codes.push_back(ReadCode::kBusy);
        break;
      case store::ReadStatus::kMissing:
        res.codes.push_back(ReadCode::kMissing);
        break;
    }
  }

  if (!req.want_contention.empty())
    res.contention = contention_.class_levels(req.want_contention);
  return res;
}

ValidateResponse Server::on_validate(const ValidateRequest& req) {
  ValidateResponse res;
  res.invalid = failed_checks(req.validate, req.tx, res.busy);
  if (!res.invalid.empty())
    stats_.validations_failed.fetch_add(1, std::memory_order_relaxed);
  return res;
}

PrepareResponse Server::on_prepare(const PrepareRequest& req) {
  stats_.prepares.fetch_add(1, std::memory_order_relaxed);
  PrepareResponse res;

  // Phase 1a: protect the write set.  Keys arrive sorted from the
  // coordinator; try_protect fails fast, so no deadlock is possible.
  std::vector<ObjectKey> protected_keys;
  protected_keys.reserve(req.write_keys.size());
  for (const auto& key : req.write_keys) {
    if (!store_.try_protect(key, req.tx)) {
      for (const auto& undo : protected_keys) store_.unprotect(undo, req.tx);
      stats_.prepare_busy.fetch_add(1, std::memory_order_relaxed);
      res.code = PrepareCode::kBusy;
      return res;
    }
    protected_keys.push_back(key);
  }

  // Phase 1b: validate the read set under protection.
  bool busy = false;
  res.invalid = failed_checks(req.read_validate, req.tx, busy);
  if (!res.invalid.empty() || busy) {
    for (const auto& undo : protected_keys) store_.unprotect(undo, req.tx);
    if (!res.invalid.empty()) {
      stats_.prepare_invalid.fetch_add(1, std::memory_order_relaxed);
      res.code = PrepareCode::kInvalid;
    } else {
      stats_.prepare_busy.fetch_add(1, std::memory_order_relaxed);
      res.code = PrepareCode::kBusy;
    }
    return res;
  }

  res.code = PrepareCode::kOk;
  res.current_versions.reserve(req.write_keys.size());
  for (const auto& key : req.write_keys)
    res.current_versions.push_back(store_.version_of(key).value_or(0));
  return res;
}

CommitResponse Server::on_commit(const CommitRequest& req) {
  stats_.commits.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t now = now_ns();
  for (std::size_t i = 0; i < req.keys.size(); ++i) {
    store_.apply(req.keys[i], req.values[i], req.versions[i], req.tx);
    contention_.on_write(req.keys[i], now);
  }
  return {};
}

AbortResponse Server::on_abort(const AbortRequest& req) {
  stats_.aborts.fetch_add(1, std::memory_order_relaxed);
  for (const auto& key : req.keys) store_.unprotect(key, req.tx);
  return {};
}

ContentionResponse Server::on_contention(const ContentionRequest& req) {
  contention_.maybe_roll(now_ns());
  ContentionResponse res;
  res.levels = contention_.class_levels(req.classes);
  return res;
}

}  // namespace acn::dtm
