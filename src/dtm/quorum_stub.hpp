// Client-side quorum I/O.
//
// The stub turns single logical operations (read an object, run two-phase
// commit) into quorum multicalls and merges the per-replica responses:
//   * read: contact a read quorum, keep the highest-version OK reply (the
//     intersection property guarantees it is the latest committed version),
//     surface incremental-validation failures as TxAbort, retry transient
//     "busy" replies with backoff;
//   * read_many: like read for N independent keys in ONE quorum round — the
//     batched path the executor uses when the UnitGraph proves several
//     remote accesses have no data dependency between their keys;
//   * prepare/commit/abort: two-phase commit over one write quorum — the
//     same nodes must see prepare, then commit or abort, so prepare returns
//     a ticket binding the chosen quorum;
//   * contention: fetch per-class contention levels for the Dynamic Module,
//     either stand-alone or piggybacked on reads.
// read, read_many, validate and prepare all climb one shared retry ladder:
// transient busy replies back off and retry, unreachable quorums re-select
// around the down nodes, each rung has its own cap, and an optional
// wall-clock deadline (op_deadline) bounds the whole climb so a faulted
// network cannot stall a transaction past its budget.
//
// commit() re-sends phase two to members whose ack was lost (dropped
// request or response leg) — servers acknowledge replays idempotently — and
// converts a lease-expired verdict into TxAbort so the executor retries the
// transaction from scratch (presumed abort).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "src/common/retry_policy.hpp"
#include "src/common/rng.hpp"
#include "src/dtm/abort.hpp"
#include "src/dtm/messages.hpp"
#include "src/net/network.hpp"
#include "src/net/transport.hpp"
#include "src/obs/obs.hpp"
#include "src/quorum/quorum_system.hpp"

namespace acn::dtm {

using DtmNetwork = net::Network<Request, Response>;
/// The request/reply surface the stub (and everything above it) runs on —
/// SimTransport over a DtmNetwork, or transport::TcpTransport over sockets.
using DtmTransport = net::Transport<Request, Response>;

struct StubConfig {
  /// Transient-busy retry shape: `retry.max_retries` busy rounds before
  /// surfacing TxAbort{kBusy}, delays from RetryPolicy::delay (base
  /// `retry.base`, doubling `retry.max_doublings` times, full-range
  /// jitter).  Each sleep is recorded in the rpc.busy.backoff_ns counter.
  RetryPolicy retry;
  /// Re-selections of a quorum when nodes are down before giving up.
  int max_quorum_retries = 3;
  /// Wall-clock budget for one quorum operation's whole retry ladder.  When
  /// the budget runs out mid-ladder the operation aborts with the kind the
  /// current rung would eventually reach (kBusy or kUnavailable) instead of
  /// climbing further.  Zero = unlimited (retry counts alone decide).
  std::chrono::nanoseconds op_deadline{0};
  /// Phase-two rounds re-sent to unacked quorum members before concluding
  /// the commit outcome from partial acks.
  int max_commit_replays = 5;
  /// Quorum group this stub addresses (sharded clusters; 0 otherwise).
  /// Stamped into every prepare and commit so a replica from another group
  /// refuses a misrouted 2PC instead of silently serving it.
  std::uint32_t group = 0;
  /// Debug mode: round-trip every outgoing request and incoming response
  /// through the binary wire codec (src/dtm/codec.hpp) and assert equality,
  /// so all traffic doubles as codec coverage.  Throws std::logic_error on
  /// a codec fidelity bug.
  bool verify_codec = false;
  /// When set, every quorum operation records an RPC span (read / prepare /
  /// commit / validate) and bumps the rpc.* counters.  Null = off.
  obs::Observability* obs = nullptr;
};

struct ReadOutcome {
  VersionedRecord record;
  /// Contention levels aligned with the `want_contention` classes passed to
  /// read(), when piggybacking was requested.
  std::vector<std::uint64_t> contention;
};

struct BatchedReadOutcome {
  std::vector<VersionedRecord> records;  // aligned with the requested keys
  std::vector<std::uint64_t> contention;
};

/// Binds a prepared two-phase commit to the quorum that granted it.
struct PrepareTicket {
  TxId tx = 0;
  std::vector<net::NodeId> quorum;
  std::vector<ObjectKey> keys;         // sorted
  std::vector<Version> new_versions;   // aligned with keys
};

/// Cross-shard 2PC metadata stamped into a prepare (defaults on
/// single-group traffic): the write-participant groups, the coordinator's
/// node id, and the redo payload (values aligned with the write keys).
/// Replicas use it to park an orphaned cross-shard prepare in-doubt instead
/// of presuming abort, and to answer DecisionQuery with enough state to
/// finish the install without the coordinator.
struct PrepareExtras {
  std::vector<std::uint32_t> participants;
  std::int64_t coordinator = -1;
  std::vector<Record> values;
};

class QuorumStub {
 public:
  /// The transport-generic constructor: `transport` must outlive the stub.
  QuorumStub(DtmTransport& transport, const quorum::QuorumSystem& quorums,
             net::NodeId client_node, std::uint64_t seed,
             StubConfig config = {});

  /// Legacy convenience: wraps `network` in an owned SimTransport.  Keeps
  /// every existing test and bench that builds a stub straight over a
  /// simulated network working unchanged.
  QuorumStub(DtmNetwork& network, const quorum::QuorumSystem& quorums,
             net::NodeId client_node, std::uint64_t seed,
             StubConfig config = {});

  /// Fetch `key` from a read quorum with incremental validation of
  /// `validate`.  Throws TxAbort(kValidation) listing invalidated keys,
  /// TxAbort(kBusy) after exhausting busy retries, TxAbort(kUnavailable)
  /// when no quorum is reachable, ObjectMissing when no replica has the
  /// object.
  ReadOutcome read(TxId tx, const ObjectKey& key,
                   const std::vector<VersionCheck>& validate,
                   const std::vector<ClassId>& want_contention = {});

  /// Fetch every key in `keys` (deduplicated by the caller) from ONE read
  /// quorum round, with the same incremental validation and the same
  /// busy/unavailable/validation retry ladder as read().  Results align
  /// with `keys`.  Throws exactly what read() throws; ObjectMissing names
  /// the first key no replica holds.
  BatchedReadOutcome read_many(TxId tx, const std::vector<ObjectKey>& keys,
                               const std::vector<VersionCheck>& validate,
                               const std::vector<ClassId>& want_contention = {});

  /// Stand-alone incremental validation; throws TxAbort(kValidation) when
  /// any replica refutes a check.
  void validate(TxId tx, const std::vector<VersionCheck>& checks);

  /// Phase one of commit.  `write_keys` must be sorted ascending;
  /// `read_versions` gives, per write key, the version the transaction read
  /// (0 for blind inserts) so new versions advance past both the replicas'
  /// and the reader's view.  Throws TxAbort on conflict.
  PrepareTicket prepare(TxId tx, const std::vector<VersionCheck>& read_checks,
                        const std::vector<ObjectKey>& write_keys,
                        const std::vector<Version>& read_versions,
                        const PrepareExtras& extras = {});

  /// Phase two: install values (aligned with ticket.keys).  Members whose
  /// ack was lost are retried up to max_commit_replays rounds (servers
  /// treat replays idempotently).  Throws TxAbort(kBusy) if any member
  /// reports the prepare lease expired (presumed abort — the write did not
  /// take effect there and must not be assumed durable), TxAbort(
  /// kUnavailable) if not a single member ever acknowledged.  A partial ack
  /// set otherwise counts as success: the quorum's version guard converges
  /// stragglers on the next write, and reads take the max version.  The
  /// replay loop is additionally bounded by op_deadline, so a faulted
  /// network yields a classified TxAbort instead of an open-ended stall.
  void commit(const PrepareTicket& ticket, const std::vector<Record>& values);

  /// Release a prepared-but-not-committed transaction.
  void abort(const PrepareTicket& ticket);

  /// Dynamic Module query: per-class contention levels (max over a write
  /// quorum — counters diverge across replicas because each sees only the
  /// commits of quorums it belonged to; the root, part of every write
  /// quorum, sees them all).
  std::vector<std::uint64_t> contention_levels(const std::vector<ClassId>& classes);

  net::NodeId client_node() const noexcept { return client_node_; }

 private:
  /// One quorum round's verdict, as seen by the shared retry ladder.
  enum class RoundStatus {
    kDone,         // finished; the round captured its result
    kBusy,         // transient busy replies: back off and retry
    kUnreachable,  // quorum not (fully) reachable: re-select and retry
  };

  /// The retry ladder every quorum operation climbs: invokes `round` until
  /// it reports kDone, backing off on kBusy (up to retry.max_retries, then
  /// TxAbort{kBusy}) and re-selecting quorums on kUnreachable (up to
  /// max_quorum_retries, then TxAbort{kUnavailable}); either abort lists
  /// `blame`.  Rounds throw TxAbort(kValidation)/ObjectMissing directly.
  void retry_ladder(const std::vector<ObjectKey>& blame,
                    const std::function<RoundStatus()>& round);

  std::vector<net::NodeId> pick_read_quorum() { return quorums_.read_quorum(rng_); }
  std::vector<net::NodeId> pick_write_quorum() { return quorums_.write_quorum(rng_); }
  /// multicall + optional codec verification of request and responses.
  std::vector<net::CallResult<Response>> exchange(
      const std::vector<net::NodeId>& quorum, const Request& request);
  void backoff(int attempt);
  void send_abort(TxId tx, const std::vector<net::NodeId>& quorum,
                  const std::vector<ObjectKey>& keys);

  /// Set by the legacy DtmNetwork constructor only; shared so stub copies
  /// and moves keep the adapter (and transport_'s target) alive.
  std::shared_ptr<DtmTransport> owned_transport_;
  DtmTransport* transport_;
  const quorum::QuorumSystem& quorums_;
  net::NodeId client_node_;
  Rng rng_;
  StubConfig config_;
};

}  // namespace acn::dtm
