#include "src/dtm/quorum_stub.hpp"

#include <algorithm>
#include <thread>

#include "src/common/clock.hpp"
#include "src/dtm/codec.hpp"

namespace acn::dtm {
namespace {

/// Union of invalid-key lists, deduplicated.
void merge_invalid(std::vector<ObjectKey>& into, const std::vector<ObjectKey>& from) {
  for (const auto& key : from)
    if (std::find(into.begin(), into.end(), key) == into.end())
      into.push_back(key);
}

void merge_contention(std::vector<std::uint64_t>& into,
                      const std::vector<std::uint64_t>& from) {
  if (from.empty()) return;
  if (into.size() < from.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i)
    into[i] = std::max(into[i], from[i]);
}

}  // namespace

QuorumStub::QuorumStub(DtmTransport& transport,
                       const quorum::QuorumSystem& quorums,
                       net::NodeId client_node, std::uint64_t seed,
                       StubConfig config)
    : transport_(&transport),
      quorums_(quorums),
      client_node_(client_node),
      rng_(seed),
      config_(config) {}

QuorumStub::QuorumStub(DtmNetwork& network, const quorum::QuorumSystem& quorums,
                       net::NodeId client_node, std::uint64_t seed,
                       StubConfig config)
    : owned_transport_(
          std::make_shared<net::SimTransport<Request, Response>>(network)),
      transport_(owned_transport_.get()),
      quorums_(quorums),
      client_node_(client_node),
      rng_(seed),
      config_(config) {}

void QuorumStub::backoff(int attempt) {
  const auto delay = config_.retry.delay(attempt, rng_);
  if (obs::Observability* o = config_.obs)
    o->rpc_busy_backoff_ns.add(static_cast<std::uint64_t>(delay.count()));
  std::this_thread::sleep_for(delay);
}

void QuorumStub::retry_ladder(const std::vector<ObjectKey>& blame,
                              const std::function<RoundStatus()>& round) {
  const std::uint64_t deadline_ns =
      static_cast<std::uint64_t>(config_.op_deadline.count());
  Stopwatch watch;
  const auto out_of_time = [&]() noexcept {
    return deadline_ns > 0 && watch.elapsed_ns() >= deadline_ns;
  };
  int busy_attempts = 0;
  int quorum_attempts = 0;
  for (;;) {
    switch (round()) {
      case RoundStatus::kDone:
        return;
      case RoundStatus::kBusy:
        if (++busy_attempts > config_.retry.max_retries || out_of_time())
          throw TxAbort(AbortKind::kBusy, blame);
        backoff(busy_attempts);
        break;
      case RoundStatus::kUnreachable:
        // Re-select; the quorum system routes the next pick around any node
        // the whole cluster knows is down, and random choice handles the rest.
        if (++quorum_attempts > config_.max_quorum_retries || out_of_time())
          throw TxAbort(AbortKind::kUnavailable, blame);
        break;
    }
  }
}

std::vector<net::CallResult<Response>> QuorumStub::exchange(
    const std::vector<net::NodeId>& quorum, const Request& request) {
  if (config_.verify_codec && !(roundtrip(request) == request))
    throw std::logic_error("codec round-trip mismatch on request");
  auto results = transport_->multicall(client_node_, quorum, request);
  if (config_.verify_codec) {
    for (const auto& result : results) {
      if (!result.ok()) continue;
      if (!(roundtrip(result.response) == result.response))
        throw std::logic_error("codec round-trip mismatch on response");
    }
  }
  return results;
}

ReadOutcome QuorumStub::read(TxId tx, const ObjectKey& key,
                             const std::vector<VersionCheck>& validate,
                             const std::vector<ClassId>& want_contention) {
  obs::Tracer::Span span;
  obs::ScopedLatency latency;
  if (obs::Observability* o = config_.obs) {
    o->rpc_reads.add();
    span.restart(&o->tracer, "rpc.read", "rpc", tx, "validated",
                 static_cast<std::int64_t>(validate.size()));
    latency.arm(o->rpc_read_ns);
  }
  ReadOutcome best;
  retry_ladder({key}, [&]() -> RoundStatus {
    const auto quorum = pick_read_quorum();
    Request request;
    request.payload = ReadRequest{tx, key, validate, want_contention};
    const auto results = exchange(quorum, request);

    std::vector<ObjectKey> invalid;
    best = ReadOutcome{};
    bool have_value = false;
    bool any_busy = false;
    bool any_missing = false;
    std::size_t reachable = 0;

    for (const auto& result : results) {
      if (!result.ok()) continue;
      ++reachable;
      const auto& res = std::get<ReadResponse>(result.response.payload);
      switch (res.code) {
        case ReadCode::kInvalid:
          merge_invalid(invalid, res.invalid);
          break;
        case ReadCode::kOk:
          if (!have_value || res.record.version > best.record.version) {
            best.record = res.record;
            have_value = true;
          }
          break;
        case ReadCode::kBusy:
          any_busy = true;
          break;
        case ReadCode::kMissing:
          any_missing = true;
          break;
      }
      merge_contention(best.contention, res.contention);
    }

    if (!invalid.empty()) throw TxAbort(AbortKind::kValidation, invalid);
    if (have_value) return RoundStatus::kDone;
    if (reachable == 0) return RoundStatus::kUnreachable;
    if (any_busy) return RoundStatus::kBusy;
    if (any_missing) throw ObjectMissing(key);
    // Only transport errors on a partially reachable quorum: retry.
    return RoundStatus::kUnreachable;
  });
  return best;
}

BatchedReadOutcome QuorumStub::read_many(
    TxId tx, const std::vector<ObjectKey>& keys,
    const std::vector<VersionCheck>& validate,
    const std::vector<ClassId>& want_contention) {
  if (keys.empty()) return {};
  if (obs::Observability* o = config_.obs)
    o->read_batch_size.observe(keys.size());
  if (keys.size() == 1) {
    // A one-key batch IS a read; keep the single-read wire format so the
    // batched path costs nothing extra when dependencies serialise a block.
    auto one = read(tx, keys.front(), validate, want_contention);
    BatchedReadOutcome out;
    out.records.push_back(std::move(one.record));
    out.contention = std::move(one.contention);
    return out;
  }

  obs::Tracer::Span span;
  obs::ScopedLatency latency;
  if (obs::Observability* o = config_.obs) {
    o->rpc_batched_reads.add();
    span.restart(&o->tracer, "rpc.read_many", "rpc", tx, "keys",
                 static_cast<std::int64_t>(keys.size()));
    latency.arm(o->rpc_read_ns);
  }

  BatchedReadOutcome out;
  retry_ladder(keys, [&]() -> RoundStatus {
    const auto quorum = pick_read_quorum();
    Request request;
    request.payload = BatchedReadRequest{tx, keys, validate, want_contention};
    const auto results = exchange(quorum, request);

    std::vector<ObjectKey> invalid;
    out = BatchedReadOutcome{};
    out.records.resize(keys.size());
    std::vector<char> have(keys.size(), 0);
    std::vector<char> busy(keys.size(), 0);
    std::vector<char> missing(keys.size(), 0);
    std::size_t reachable = 0;

    for (const auto& result : results) {
      if (!result.ok()) continue;
      ++reachable;
      const auto& res = std::get<BatchedReadResponse>(result.response.payload);
      for (std::size_t i = 0; i < res.codes.size() && i < keys.size(); ++i) {
        switch (res.codes[i]) {
          case ReadCode::kInvalid:
            merge_invalid(invalid, res.invalid);
            break;
          case ReadCode::kOk:
            if (!have[i] || res.records[i].version > out.records[i].version) {
              out.records[i] = res.records[i];
              have[i] = 1;
            }
            break;
          case ReadCode::kBusy:
            busy[i] = 1;
            break;
          case ReadCode::kMissing:
            missing[i] = 1;
            break;
        }
      }
      merge_contention(out.contention, res.contention);
    }

    if (!invalid.empty()) throw TxAbort(AbortKind::kValidation, invalid);
    if (reachable == 0) return RoundStatus::kUnreachable;

    // Per-key resolution mirrors read(): a served key is done regardless of
    // what other replicas said about it; an unserved key escalates in the
    // order busy > missing > transport loss.  The whole batch retries as one
    // unit — replaying already-served keys is cheaper than a second round.
    bool any_retry_busy = false;
    bool any_retry_unreachable = false;
    const ObjectKey* missing_key = nullptr;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (have[i]) continue;
      if (busy[i])
        any_retry_busy = true;
      else if (missing[i]) {
        if (missing_key == nullptr) missing_key = &keys[i];
      } else
        any_retry_unreachable = true;
    }
    if (any_retry_busy) return RoundStatus::kBusy;
    if (missing_key != nullptr) throw ObjectMissing(*missing_key);
    if (any_retry_unreachable) return RoundStatus::kUnreachable;
    return RoundStatus::kDone;
  });
  // N keys through one quorum round instead of N sequential rounds.
  if (obs::Observability* o = config_.obs) o->rpcs_saved.add(keys.size() - 1);
  return out;
}

void QuorumStub::validate(TxId tx, const std::vector<VersionCheck>& checks) {
  if (checks.empty()) return;
  obs::Tracer::Span span;
  if (obs::Observability* o = config_.obs) {
    o->rpc_validates.add();
    span.restart(&o->tracer, "rpc.validate", "rpc", tx, "checks",
                 static_cast<std::int64_t>(checks.size()));
  }
  retry_ladder({}, [&]() -> RoundStatus {
    const auto quorum = pick_read_quorum();
    Request request;
    request.payload = ValidateRequest{tx, checks};
    const auto results = exchange(quorum, request);
    std::vector<ObjectKey> invalid;
    bool any_busy = false;
    std::size_t reachable = 0;
    for (const auto& result : results) {
      if (!result.ok()) continue;
      ++reachable;
      const auto& res = std::get<ValidateResponse>(result.response.payload);
      merge_invalid(invalid, res.invalid);
      any_busy = any_busy || res.busy;
    }
    if (!invalid.empty()) throw TxAbort(AbortKind::kValidation, invalid);
    // An unreachable quorum must not pass as "nobody refuted the checks" —
    // re-select until someone actually answers.
    if (reachable == 0) return RoundStatus::kUnreachable;
    // Some checked object is protected by an in-flight commit: retry until
    // the commit settles and validation can answer definitively.
    if (any_busy) return RoundStatus::kBusy;
    return RoundStatus::kDone;
  });
}

PrepareTicket QuorumStub::prepare(TxId tx,
                                  const std::vector<VersionCheck>& read_checks,
                                  const std::vector<ObjectKey>& write_keys,
                                  const std::vector<Version>& read_versions,
                                  const PrepareExtras& extras) {
  obs::Tracer::Span span;
  obs::ScopedLatency latency;
  if (obs::Observability* o = config_.obs) {
    o->rpc_prepares.add();
    span.restart(&o->tracer, "rpc.prepare", "2pc", tx, "writes",
                 static_cast<std::int64_t>(write_keys.size()));
    latency.arm(o->rpc_prepare_ns);
  }
  PrepareTicket ticket;
  retry_ladder(write_keys, [&]() -> RoundStatus {
    const auto quorum = pick_write_quorum();
    Request request;
    PrepareRequest prepare_req{tx, read_checks, write_keys, config_.group};
    prepare_req.participants = extras.participants;
    prepare_req.coordinator = extras.coordinator;
    prepare_req.values = extras.values;
    request.payload = std::move(prepare_req);
    const auto results = exchange(quorum, request);

    std::vector<ObjectKey> invalid;
    bool any_busy = false;
    bool any_unreachable = false;
    bool any_wrong_group = false;
    std::vector<Version> current(write_keys.size(), 0);
    std::size_t ok_count = 0;

    for (const auto& result : results) {
      if (!result.ok()) {
        any_unreachable = true;
        continue;
      }
      const auto& res = std::get<PrepareResponse>(result.response.payload);
      switch (res.code) {
        case PrepareCode::kOk:
          ++ok_count;
          for (std::size_t i = 0; i < res.current_versions.size(); ++i)
            current[i] = std::max(current[i], res.current_versions[i]);
          break;
        case PrepareCode::kBusy:
          any_busy = true;
          break;
        case PrepareCode::kInvalid:
          merge_invalid(invalid, res.invalid);
          break;
        case PrepareCode::kWrongGroup:
          any_wrong_group = true;
          break;
      }
    }

    const bool all_ok = ok_count == results.size() && !any_busy &&
                        !any_unreachable && !any_wrong_group;
    if (!all_ok) {
      // Release whatever protection was acquired anywhere in the quorum.
      send_abort(tx, quorum, write_keys);
      // A wrong-group refusal is deterministic (the replica's group is
      // fixed), so retrying the quorum cannot help — fail the operation.
      if (any_wrong_group) throw TxAbort(AbortKind::kUnavailable, write_keys);
      if (!invalid.empty()) throw TxAbort(AbortKind::kValidation, invalid);
      if (any_busy) return RoundStatus::kBusy;
      // A partly-down write quorum is not fatal: another write quorum that
      // avoids the down nodes may exist, so re-select like read() does.
      return RoundStatus::kUnreachable;
    }

    ticket = PrepareTicket{};
    ticket.tx = tx;
    ticket.quorum = quorum;
    ticket.keys = write_keys;
    ticket.new_versions.reserve(write_keys.size());
    for (std::size_t i = 0; i < write_keys.size(); ++i) {
      const Version floor_version =
          std::max(current[i], i < read_versions.size() ? read_versions[i] : 0);
      ticket.new_versions.push_back(floor_version + 1);
    }
    return RoundStatus::kDone;
  });
  return ticket;
}

void QuorumStub::commit(const PrepareTicket& ticket,
                        const std::vector<Record>& values) {
  obs::Tracer::Span span;
  obs::ScopedLatency latency;
  if (obs::Observability* o = config_.obs) {
    o->rpc_commits.add();
    span.restart(&o->tracer, "rpc.commit", "2pc", ticket.tx, "writes",
                 static_cast<std::int64_t>(ticket.keys.size()));
    latency.arm(o->rpc_commit_ns);
  }
  Request request;
  request.payload = CommitRequest{ticket.tx, ticket.keys, values,
                                  ticket.new_versions, config_.group};

  // Replay phase two to unacked members until everyone answered, a member
  // reports the lease expired, or the replay budget runs out.  Servers ack
  // replays as kDuplicate, so re-sending through a lost request or response
  // leg is safe.  The same op_deadline that bounds the retry ladder bounds
  // this loop: when the budget runs out the partial-ack classification
  // below decides the outcome instead of replaying further.
  const std::uint64_t deadline_ns =
      static_cast<std::uint64_t>(config_.op_deadline.count());
  Stopwatch watch;
  std::vector<net::NodeId> pending = ticket.quorum;
  std::size_t acked = 0;
  bool expired = false;
  for (int attempt = 0;; ++attempt) {
    const auto results = exchange(pending, request);
    std::vector<net::NodeId> still_pending;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        still_pending.push_back(pending[i]);
        continue;
      }
      const auto& res = std::get<CommitResponse>(results[i].response.payload);
      if (res.code == CommitCode::kExpired)
        expired = true;
      else
        ++acked;
    }
    pending = std::move(still_pending);
    if (expired || pending.empty() || attempt >= config_.max_commit_replays ||
        (deadline_ns > 0 && watch.elapsed_ns() >= deadline_ns))
      break;
    if (obs::Observability* o = config_.obs)
      o->rpc_commit_replays.add(pending.size());
    backoff(attempt);
  }

  if (expired) {
    // Presumed abort: at least one member reclaimed the prepare lease and
    // refused the install.  The members that did apply stay consistent (the
    // quorum's max-version read rule tolerates stragglers), but this
    // transaction cannot claim durability — surface it as a busy-style
    // abort so the executor re-runs it from scratch.  The kLeaseExpired
    // detail tells the scheduler this was a full 2PC burned, the strongest
    // overload signal its admission window reacts to.
    throw TxAbort(AbortKind::kBusy, ticket.keys, AbortDetail::kLeaseExpired);
  }
  if (acked == 0) throw TxAbort(AbortKind::kUnavailable, ticket.keys);
}

void QuorumStub::abort(const PrepareTicket& ticket) {
  send_abort(ticket.tx, ticket.quorum, ticket.keys);
}

void QuorumStub::send_abort(TxId tx, const std::vector<net::NodeId>& quorum,
                            const std::vector<ObjectKey>& keys) {
  if (obs::Observability* o = config_.obs) o->rpc_aborts.add();
  Request request;
  request.payload = AbortRequest{tx, keys};
  // Aborts must be delivered as reliably as commits: a dropped abort leaves
  // the keys protected on that member until the prepare lease expires, and
  // on hot keys that stall every later prepare for the whole lease.  Replay
  // to unacked members (unprotect is idempotent); give up after the replay
  // budget or op_deadline — lease expiry is the backstop, and a down
  // member's protection cannot block anyone while it is down.
  const std::uint64_t deadline_ns =
      static_cast<std::uint64_t>(config_.op_deadline.count());
  Stopwatch watch;
  std::vector<net::NodeId> pending = quorum;
  for (int attempt = 0;; ++attempt) {
    const auto results = exchange(pending, request);
    std::vector<net::NodeId> still_pending;
    for (std::size_t i = 0; i < results.size(); ++i)
      if (!results[i].ok()) still_pending.push_back(pending[i]);
    pending = std::move(still_pending);
    if (pending.empty() || attempt >= config_.max_commit_replays ||
        (deadline_ns > 0 && watch.elapsed_ns() >= deadline_ns))
      return;
  }
}

std::vector<std::uint64_t> QuorumStub::contention_levels(
    const std::vector<ClassId>& classes) {
  obs::Tracer::Span span;
  if (obs::Observability* o = config_.obs) {
    o->rpc_contention_queries.add();
    span.restart(&o->tracer, "rpc.contention", "rpc", 0, "classes",
                 static_cast<std::int64_t>(classes.size()));
  }
  // Write counters are bumped on write-quorum nodes at commit time, and
  // every write quorum contains the tree root, so querying a *write*
  // quorum (rather than a read quorum, which may be all leaves) always
  // reaches at least one replica with the complete per-window counts.
  const auto quorum = pick_write_quorum();
  Request request;
  request.payload = ContentionRequest{classes};
  const auto results = exchange(quorum, request);
  std::vector<std::uint64_t> levels(classes.size(), 0);
  for (const auto& result : results) {
    if (!result.ok()) continue;
    const auto& res = std::get<ContentionResponse>(result.response.payload);
    for (std::size_t i = 0; i < res.levels.size() && i < levels.size(); ++i)
      levels[i] = std::max(levels[i], res.levels[i]);
  }
  return levels;
}

}  // namespace acn::dtm
