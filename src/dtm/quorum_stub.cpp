#include "src/dtm/quorum_stub.hpp"

#include <algorithm>
#include <thread>

#include "src/dtm/codec.hpp"

namespace acn::dtm {
namespace {

/// Union of invalid-key lists, deduplicated.
void merge_invalid(std::vector<ObjectKey>& into, const std::vector<ObjectKey>& from) {
  for (const auto& key : from)
    if (std::find(into.begin(), into.end(), key) == into.end())
      into.push_back(key);
}

}  // namespace

QuorumStub::QuorumStub(DtmNetwork& network, const quorum::QuorumSystem& quorums,
                       net::NodeId client_node, std::uint64_t seed,
                       StubConfig config)
    : network_(network),
      quorums_(quorums),
      client_node_(client_node),
      rng_(seed),
      config_(config) {}

void QuorumStub::backoff(int attempt) {
  const auto base = config_.busy_backoff.count();
  const std::int64_t shifted = base << std::min(attempt, 6);
  const std::int64_t jitter =
      static_cast<std::int64_t>(rng_.uniform(0, static_cast<std::uint64_t>(shifted)));
  std::this_thread::sleep_for(std::chrono::nanoseconds{shifted + jitter});
}

std::vector<net::CallResult<Response>> QuorumStub::exchange(
    const std::vector<net::NodeId>& quorum, const Request& request) {
  if (config_.verify_codec && !(roundtrip(request) == request))
    throw std::logic_error("codec round-trip mismatch on request");
  auto results = network_.multicall(client_node_, quorum,
                                    [&](net::NodeId) { return request; });
  if (config_.verify_codec) {
    for (const auto& result : results) {
      if (!result.ok()) continue;
      if (!(roundtrip(result.response) == result.response))
        throw std::logic_error("codec round-trip mismatch on response");
    }
  }
  return results;
}

ReadOutcome QuorumStub::read(TxId tx, const ObjectKey& key,
                             const std::vector<VersionCheck>& validate,
                             const std::vector<ClassId>& want_contention) {
  obs::Tracer::Span span;
  obs::ScopedLatency latency;
  if (obs::Observability* o = config_.obs) {
    o->rpc_reads.add();
    span.restart(&o->tracer, "rpc.read", "rpc", tx, "validated",
                 static_cast<std::int64_t>(validate.size()));
    latency.arm(o->rpc_read_ns);
  }
  int busy_attempts = 0;
  int quorum_attempts = 0;
  for (;;) {
    const auto quorum = pick_read_quorum();
    Request request;
    request.payload = ReadRequest{tx, key, validate, want_contention};
    const auto results = exchange(quorum, request);

    std::vector<ObjectKey> invalid;
    ReadOutcome best;
    bool have_value = false;
    bool any_busy = false;
    bool any_missing = false;
    std::size_t reachable = 0;

    for (const auto& result : results) {
      if (!result.ok()) continue;
      ++reachable;
      const auto& res = std::get<ReadResponse>(result.response.payload);
      switch (res.code) {
        case ReadCode::kInvalid:
          merge_invalid(invalid, res.invalid);
          break;
        case ReadCode::kOk:
          if (!have_value || res.record.version > best.record.version) {
            best.record = res.record;
            have_value = true;
          }
          break;
        case ReadCode::kBusy:
          any_busy = true;
          break;
        case ReadCode::kMissing:
          any_missing = true;
          break;
      }
      if (!res.contention.empty()) {
        if (best.contention.size() < res.contention.size())
          best.contention.resize(res.contention.size(), 0);
        for (std::size_t i = 0; i < res.contention.size(); ++i)
          best.contention[i] = std::max(best.contention[i], res.contention[i]);
      }
    }

    if (!invalid.empty()) throw TxAbort(AbortKind::kValidation, invalid);
    if (have_value) return best;
    if (reachable == 0) {
      if (++quorum_attempts > config_.max_quorum_retries)
        throw TxAbort(AbortKind::kUnavailable, {key});
      continue;  // re-select a quorum around the down nodes
    }
    if (any_busy) {
      if (++busy_attempts > config_.max_busy_retries)
        throw TxAbort(AbortKind::kBusy, {key});
      backoff(busy_attempts);
      continue;
    }
    if (any_missing) throw ObjectMissing(key);
    // Only transport errors on a partially reachable quorum: retry.
    if (++quorum_attempts > config_.max_quorum_retries)
      throw TxAbort(AbortKind::kUnavailable, {key});
  }
}

void QuorumStub::validate(TxId tx, const std::vector<VersionCheck>& checks) {
  if (checks.empty()) return;
  obs::Tracer::Span span;
  if (obs::Observability* o = config_.obs) {
    o->rpc_validates.add();
    span.restart(&o->tracer, "rpc.validate", "rpc", tx, "checks",
                 static_cast<std::int64_t>(checks.size()));
  }
  int busy_attempts = 0;
  for (;;) {
    const auto quorum = pick_read_quorum();
    Request request;
    request.payload = ValidateRequest{tx, checks};
    const auto results = exchange(quorum, request);
    std::vector<ObjectKey> invalid;
    bool any_busy = false;
    for (const auto& result : results) {
      if (!result.ok()) continue;
      const auto& res = std::get<ValidateResponse>(result.response.payload);
      merge_invalid(invalid, res.invalid);
      any_busy = any_busy || res.busy;
    }
    if (!invalid.empty()) throw TxAbort(AbortKind::kValidation, invalid);
    if (!any_busy) return;
    // Some checked object is protected by an in-flight commit: retry until
    // the commit settles and validation can answer definitively.
    if (++busy_attempts > config_.max_busy_retries)
      throw TxAbort(AbortKind::kBusy, {});
    backoff(busy_attempts);
  }
}

PrepareTicket QuorumStub::prepare(TxId tx,
                                  const std::vector<VersionCheck>& read_checks,
                                  const std::vector<ObjectKey>& write_keys,
                                  const std::vector<Version>& read_versions) {
  obs::Tracer::Span span;
  obs::ScopedLatency latency;
  if (obs::Observability* o = config_.obs) {
    o->rpc_prepares.add();
    span.restart(&o->tracer, "rpc.prepare", "2pc", tx, "writes",
                 static_cast<std::int64_t>(write_keys.size()));
    latency.arm(o->rpc_prepare_ns);
  }
  int busy_attempts = 0;
  for (;;) {
    const auto quorum = pick_write_quorum();
    Request request;
    request.payload = PrepareRequest{tx, read_checks, write_keys};
    const auto results = exchange(quorum, request);

    std::vector<ObjectKey> invalid;
    bool any_busy = false;
    bool any_unreachable = false;
    std::vector<Version> current(write_keys.size(), 0);
    std::size_t ok_count = 0;

    for (const auto& result : results) {
      if (!result.ok()) {
        any_unreachable = true;
        continue;
      }
      const auto& res = std::get<PrepareResponse>(result.response.payload);
      switch (res.code) {
        case PrepareCode::kOk:
          ++ok_count;
          for (std::size_t i = 0; i < res.current_versions.size(); ++i)
            current[i] = std::max(current[i], res.current_versions[i]);
          break;
        case PrepareCode::kBusy:
          any_busy = true;
          break;
        case PrepareCode::kInvalid:
          merge_invalid(invalid, res.invalid);
          break;
      }
    }

    const bool all_ok =
        ok_count == results.size() && !any_busy && !any_unreachable;
    if (!all_ok) {
      // Release whatever protection was acquired anywhere in the quorum.
      send_abort(tx, quorum, write_keys);
      if (!invalid.empty()) throw TxAbort(AbortKind::kValidation, invalid);
      if (any_busy) {
        if (++busy_attempts > config_.max_busy_retries)
          throw TxAbort(AbortKind::kBusy, write_keys);
        backoff(busy_attempts);
        continue;
      }
      throw TxAbort(AbortKind::kUnavailable, write_keys);
    }

    PrepareTicket ticket;
    ticket.tx = tx;
    ticket.quorum = quorum;
    ticket.keys = write_keys;
    ticket.new_versions.reserve(write_keys.size());
    for (std::size_t i = 0; i < write_keys.size(); ++i) {
      const Version floor_version =
          std::max(current[i], i < read_versions.size() ? read_versions[i] : 0);
      ticket.new_versions.push_back(floor_version + 1);
    }
    return ticket;
  }
}

void QuorumStub::commit(const PrepareTicket& ticket,
                        const std::vector<Record>& values) {
  obs::Tracer::Span span;
  obs::ScopedLatency latency;
  if (obs::Observability* o = config_.obs) {
    o->rpc_commits.add();
    span.restart(&o->tracer, "rpc.commit", "2pc", ticket.tx, "writes",
                 static_cast<std::int64_t>(ticket.keys.size()));
    latency.arm(o->rpc_commit_ns);
  }
  Request request;
  request.payload =
      CommitRequest{ticket.tx, ticket.keys, values, ticket.new_versions};
  exchange(ticket.quorum, request);
}

void QuorumStub::abort(const PrepareTicket& ticket) {
  send_abort(ticket.tx, ticket.quorum, ticket.keys);
}

void QuorumStub::send_abort(TxId tx, const std::vector<net::NodeId>& quorum,
                            const std::vector<ObjectKey>& keys) {
  if (obs::Observability* o = config_.obs) o->rpc_aborts.add();
  Request request;
  request.payload = AbortRequest{tx, keys};
  exchange(quorum, request);
}

std::vector<std::uint64_t> QuorumStub::contention_levels(
    const std::vector<ClassId>& classes) {
  obs::Tracer::Span span;
  if (obs::Observability* o = config_.obs) {
    o->rpc_contention_queries.add();
    span.restart(&o->tracer, "rpc.contention", "rpc", 0, "classes",
                 static_cast<std::int64_t>(classes.size()));
  }
  // Write counters are bumped on write-quorum nodes at commit time, and
  // every write quorum contains the tree root, so querying a *write*
  // quorum (rather than a read quorum, which may be all leaves) always
  // reaches at least one replica with the complete per-window counts.
  const auto quorum = pick_write_quorum();
  Request request;
  request.payload = ContentionRequest{classes};
  const auto results = exchange(quorum, request);
  std::vector<std::uint64_t> levels(classes.size(), 0);
  for (const auto& result : results) {
    if (!result.ok()) continue;
    const auto& res = std::get<ContentionResponse>(result.response.payload);
    for (std::size_t i = 0; i < res.levels.size() && i < levels.size(); ++i)
      levels[i] = std::max(levels[i], res.levels[i]);
  }
  return levels;
}

}  // namespace acn::dtm
